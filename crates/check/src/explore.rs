//! The bounded explorers: exact breadth-first enumeration of every
//! reachable configuration.
//!
//! Two explorers share one transition source — the protocol's
//! [`PackedProtocol::outcomes`] rate table:
//!
//! * [`explore_counts`] walks **count configurations** (class-count
//!   vectors) and is exact on the complete graph, where exchangeability
//!   makes the pair distribution a function of counts alone;
//! * [`explore_agents`] walks **per-agent configurations** (one packed
//!   word per agent, bit-packed into a `u64` key) and is exact on any
//!   topology, at the price of the larger per-agent state space.
//!
//! Both fail closed: a protocol without an `outcomes` table, a declared
//! distribution that does not sum to 1, or an exploration that hits the
//! state cap before exhausting the reachable set is an error, never a
//! silent pass.

use crate::report::{Cause, CheckReport, TraceStep, Violation};
use pp_engine::PackedProtocol;
use pp_graph::Topology;
use std::collections::HashMap;

/// Violations recorded per check before the rest are summarised away.
pub const MAX_VIOLATIONS: usize = 8;

/// Absolute tolerance when comparing exact transition probabilities.
pub const PROB_EPS: f64 = 1e-9;

/// One exact transition out of a configuration.
#[derive(Debug, Clone)]
pub struct Edge {
    /// Packed word of the scheduled agent.
    pub scheduled: u32,
    /// Packed word(s) observed.
    pub observed: Vec<u32>,
    /// Packed word the scheduled agent moves to (differs from
    /// `scheduled`).
    pub next: u32,
    /// Exact probability of this transition in one time-step.
    pub prob: f64,
}

/// A per-configuration predicate over class counts (indexed by packed
/// word). Returns `Some((cause, detail))` when the configuration violates
/// the property.
pub struct Invariant {
    /// Property name for the report.
    pub name: &'static str,
    /// The predicate.
    #[allow(clippy::type_complexity)]
    pub check: Box<dyn Fn(&[u64]) -> Option<(Cause, String)>>,
}

impl Invariant {
    /// Wraps a predicate closure.
    pub fn new(
        name: &'static str,
        check: impl Fn(&[u64]) -> Option<(Cause, String)> + 'static,
    ) -> Self {
        Invariant {
            name,
            check: Box::new(check),
        }
    }
}

/// The population never changes size: `Σ counts == n`.
pub fn population_conserved(n: u64) -> Invariant {
    Invariant::new("population-conservation", move |counts| {
        let total: u64 = counts.iter().sum();
        (total != n).then(|| {
            (
                Cause::PopulationChanged,
                format!("population {total} != {n}"),
            )
        })
    })
}

/// The paper's sustainability invariant: every colour keeps at least one
/// dark agent (packed word `2i | 1`), on any topology — the one-way rule
/// can only soften a dark agent that observes *another* dark agent of its
/// colour.
pub fn sustainability(k: usize) -> Invariant {
    Invariant::new("sustainability", move |counts| {
        (0..k).find_map(|i| {
            let dark = counts.get(2 * i + 1).copied().unwrap_or(0);
            (dark == 0).then(|| {
                (
                    Cause::LastDarkKilled,
                    format!("colour {i} has no dark agent left"),
                )
            })
        })
    })
}

/// Consensus-protocol support monotonicity: a class absent from the seed
/// configuration can never gain an agent (adoption requires observing a
/// supporter).
pub fn support_never_grows(seed_counts: &[u64]) -> Invariant {
    let seed = seed_counts.to_vec();
    Invariant::new("support-monotone", move |counts| {
        counts.iter().enumerate().find_map(|(w, &c)| {
            (c > 0 && seed.get(w).copied().unwrap_or(0) == 0).then(|| {
                (
                    Cause::ExtinctColourRevived,
                    format!("class {w} revived from extinction"),
                )
            })
        })
    })
}

/// Validates and returns the protocol's declared outcome distribution for
/// one interaction, failing closed on a missing or malformed table.
pub fn checked_outcomes<P: PackedProtocol + ?Sized>(
    protocol: &P,
    me: u32,
    observed: &[u32],
    num_words: u32,
) -> Result<Vec<(u32, f64)>, (Cause, String)> {
    let Some(outs) = protocol.outcomes(me, observed) else {
        return Err((
            Cause::Unverifiable,
            format!(
                "protocol `{}` declares no exact outcome distribution (PackedProtocol::outcomes)",
                protocol.name()
            ),
        ));
    };
    let mut total = 0.0;
    for &(next, p) in &outs {
        if !(0.0..=1.0 + PROB_EPS).contains(&p) {
            return Err((
                Cause::BadDistribution,
                format!("outcome probability {p} for word {me} -> {next} outside [0, 1]"),
            ));
        }
        if next >= num_words {
            return Err((
                Cause::ClassOutOfRange,
                format!("outcome word {next} outside the {num_words}-class universe"),
            ));
        }
        total += p;
    }
    if (total - 1.0).abs() > 1e-6 {
        return Err((
            Cause::BadDistribution,
            format!("outcome distribution for word {me} sums to {total}"),
        ));
    }
    Ok(outs)
}

/// Enumerates every observation tuple (independent uniform draws over the
/// `n − 1` other agents, with replacement) with its probability, calling
/// `f(observed, p_obs)` per tuple of positive probability.
fn enumerate_count_obs(
    counts: &[u64],
    scheduled: usize,
    m: usize,
    obs: &mut Vec<u32>,
    p_acc: f64,
    f: &mut impl FnMut(&[u32], f64),
) {
    if obs.len() == m {
        f(obs, p_acc);
        return;
    }
    let n: u64 = counts.iter().sum();
    for (o, &c) in counts.iter().enumerate() {
        let avail = c - u64::from(o == scheduled);
        if avail == 0 {
            continue;
        }
        let p = avail as f64 / (n - 1) as f64;
        obs.push(o as u32);
        enumerate_count_obs(counts, scheduled, m, obs, p_acc * p, f);
        obs.pop();
    }
}

/// Every transition out of a count configuration on the complete graph:
/// `(successor counts, edge)` pairs, self-loops omitted.
///
/// Edge probability is exact by exchangeability: the scheduled agent is a
/// uniform draw (`c_s / n`), each observation an independent uniform draw
/// over the other `n − 1` agents (`(c_o − [o = s]) / (n − 1)`), the
/// outcome weight the protocol's declared rate.
#[allow(clippy::type_complexity)]
pub fn count_successors<P: PackedProtocol + ?Sized>(
    protocol: &P,
    counts: &[u64],
    observations: usize,
) -> Result<Vec<(Vec<u64>, Edge)>, (Cause, String)> {
    let num_words = counts.len() as u32;
    let n: u64 = counts.iter().sum();
    assert!(n >= 2, "count exploration needs at least 2 agents");
    let mut out = Vec::new();
    let mut err = None;
    for s in 0..counts.len() {
        if counts[s] == 0 {
            continue;
        }
        let p_sched = counts[s] as f64 / n as f64;
        let mut obs = Vec::with_capacity(observations);
        enumerate_count_obs(counts, s, observations, &mut obs, 1.0, &mut |obs, p_obs| {
            if err.is_some() {
                return;
            }
            match checked_outcomes(protocol, s as u32, obs, num_words) {
                Ok(outs) => {
                    for (next, p) in outs {
                        let prob = p_sched * p_obs * p;
                        if next == s as u32 || prob <= 0.0 {
                            continue;
                        }
                        let mut succ = counts.to_vec();
                        succ[s] -= 1;
                        succ[next as usize] += 1;
                        out.push((
                            succ,
                            Edge {
                                scheduled: s as u32,
                                observed: obs.to_vec(),
                                next,
                                prob,
                            },
                        ));
                    }
                }
                Err(e) => err = Some(e),
            }
        });
        if let Some(e) = err {
            return Err(e);
        }
    }
    Ok(out)
}

/// The full reachable set of count configurations from one seed, with
/// parent pointers for counterexample traces.
#[derive(Debug)]
pub struct CountExploration {
    /// Every reachable configuration, in BFS discovery order (`configs[0]`
    /// is the seed).
    pub configs: Vec<Vec<u64>>,
    /// Configuration → index in `configs`.
    pub index: HashMap<Vec<u64>, usize>,
    /// Transitions followed (including rediscoveries).
    pub edges: u64,
    /// `true` if the state cap stopped the walk early (the run proves
    /// nothing; treat as failure).
    pub truncated: bool,
    parents: Vec<Option<(usize, Edge)>>,
}

impl CountExploration {
    /// The explored path from the seed to configuration `idx`.
    pub fn trace_to(&self, idx: usize) -> Vec<TraceStep> {
        let mut steps = Vec::new();
        let mut at = idx;
        while let Some((parent, edge)) = &self.parents[at] {
            steps.push(TraceStep {
                counts: self.configs[*parent].clone(),
                scheduled: edge.scheduled,
                observed: edge.observed.clone(),
                next: edge.next,
                prob: edge.prob,
            });
            at = *parent;
        }
        steps.reverse();
        steps
    }
}

/// Exhaustive BFS over count configurations on the complete graph.
///
/// Fails closed: a missing/malformed rate table aborts with its cause, and
/// hitting `max_states` marks the exploration truncated.
pub fn explore_counts<P: PackedProtocol + ?Sized>(
    protocol: &P,
    seed: &[u64],
    observations: usize,
    max_states: usize,
) -> Result<CountExploration, (Cause, String)> {
    let mut expl = CountExploration {
        configs: vec![seed.to_vec()],
        index: HashMap::from([(seed.to_vec(), 0)]),
        edges: 0,
        truncated: false,
        parents: vec![None],
    };
    let mut head = 0;
    while head < expl.configs.len() {
        let counts = expl.configs[head].clone();
        for (succ, edge) in count_successors(protocol, &counts, observations)? {
            expl.edges += 1;
            if expl.index.contains_key(&succ) {
                continue;
            }
            if expl.configs.len() >= max_states {
                expl.truncated = true;
                return Ok(expl);
            }
            let idx = expl.configs.len();
            expl.index.insert(succ.clone(), idx);
            expl.configs.push(succ);
            expl.parents.push(Some((head, edge)));
        }
        head += 1;
    }
    Ok(expl)
}

/// Runs every invariant over every explored count configuration,
/// returning at most [`MAX_VIOLATIONS`] violations with their traces.
pub fn check_invariants_counts(
    expl: &CountExploration,
    invariants: &[Invariant],
) -> Vec<Violation> {
    let mut violations = Vec::new();
    for (idx, counts) in expl.configs.iter().enumerate() {
        for inv in invariants {
            if violations.len() >= MAX_VIOLATIONS {
                return violations;
            }
            if let Some((cause, detail)) = (inv.check)(counts) {
                violations.push(Violation {
                    property: inv.name.to_string(),
                    cause,
                    detail,
                    trace: expl.trace_to(idx),
                    counts: counts.clone(),
                });
            }
        }
    }
    violations
}

/// The per-agent reachable set: one bit-packed `u64` key per
/// configuration.
#[derive(Debug)]
pub struct AgentExploration {
    /// Population size.
    pub n: usize,
    /// Class-universe size (packed words are `< num_words`).
    pub num_words: u32,
    /// Every reachable configuration key, in BFS discovery order.
    pub configs: Vec<u64>,
    /// Key → index in `configs`.
    pub index: HashMap<u64, usize>,
    /// Transitions followed (including rediscoveries).
    pub edges: u64,
    /// `true` if the state cap stopped the walk early.
    pub truncated: bool,
    bits: u32,
    parents: Vec<Option<(usize, Edge)>>,
}

impl AgentExploration {
    /// Decodes a configuration key into per-agent packed words.
    pub fn decode(&self, key: u64) -> Vec<u32> {
        decode_key(key, self.n, self.bits)
    }

    /// Class counts (indexed by packed word) of a configuration key.
    pub fn counts_of(&self, key: u64) -> Vec<u64> {
        let mut counts = vec![0u64; self.num_words as usize];
        for w in self.decode(key) {
            counts[w as usize] += 1;
        }
        counts
    }

    /// The explored path from the seed to configuration `idx`.
    pub fn trace_to(&self, idx: usize) -> Vec<TraceStep> {
        let mut steps = Vec::new();
        let mut at = idx;
        while let Some((parent, edge)) = &self.parents[at] {
            steps.push(TraceStep {
                counts: self.counts_of(self.configs[*parent]),
                scheduled: edge.scheduled,
                observed: edge.observed.clone(),
                next: edge.next,
                prob: edge.prob,
            });
            at = *parent;
        }
        steps.reverse();
        steps
    }
}

fn key_bits(num_words: u32) -> u32 {
    u32::BITS - num_words.saturating_sub(1).leading_zeros().min(31)
}

fn encode_key(states: &[u32], bits: u32) -> u64 {
    let mut key = 0u64;
    for (i, &w) in states.iter().enumerate() {
        key |= (w as u64) << (bits * i as u32);
    }
    key
}

fn decode_key(key: u64, n: usize, bits: u32) -> Vec<u32> {
    let mask = (1u64 << bits) - 1;
    (0..n)
        .map(|i| ((key >> (bits * i as u32)) & mask) as u32)
        .collect()
}

/// Exhaustive BFS over per-agent configurations on an arbitrary topology.
///
/// Exact on any graph: the scheduled agent is uniform over the `n`
/// agents, each observation an independent uniform draw over the
/// scheduled agent's neighbourhood (the engines' documented sampling
/// model), the outcome weight the protocol's declared rate.
///
/// # Panics
///
/// Panics if the configuration does not fit a `u64` key
/// (`n · ⌈log₂ num_words⌉ > 64`) or the topology size differs from the
/// seed length.
pub fn explore_agents<P: PackedProtocol + ?Sized, T: Topology + ?Sized>(
    protocol: &P,
    topology: &T,
    seed: &[u32],
    num_words: u32,
    observations: usize,
    max_states: usize,
) -> Result<AgentExploration, (Cause, String)> {
    let n = seed.len();
    assert_eq!(topology.len(), n, "topology size != seed population");
    let bits = key_bits(num_words).max(1);
    assert!(
        bits * n as u32 <= 64,
        "configuration does not fit a u64 key: {n} agents x {bits} bits"
    );
    let seed_key = encode_key(seed, bits);
    let mut expl = AgentExploration {
        n,
        num_words,
        configs: vec![seed_key],
        index: HashMap::from([(seed_key, 0)]),
        edges: 0,
        truncated: false,
        bits,
        parents: vec![None],
    };
    let neighbourhoods: Vec<Vec<usize>> = (0..n).map(|u| topology.neighbors(u)).collect();
    let mut head = 0;
    while head < expl.configs.len() {
        let key = expl.configs[head];
        let states = decode_key(key, n, bits);
        for (u, nbrs) in neighbourhoods.iter().enumerate() {
            let me = states[u];
            let p_base = 1.0 / n as f64 / (nbrs.len() as f64).powi(observations as i32);
            let mut obs = Vec::with_capacity(observations);
            let mut err = None;
            enumerate_agent_obs(&states, nbrs, observations, &mut obs, &mut |obs| {
                if err.is_some() {
                    return;
                }
                match checked_outcomes(protocol, me, obs, num_words) {
                    Ok(outs) => {
                        for (next, p) in outs {
                            let prob = p_base * p;
                            if next == me || prob <= 0.0 {
                                continue;
                            }
                            expl.edges += 1;
                            let succ_key = key ^ (((me ^ next) as u64) << (bits * u as u32));
                            if expl.index.contains_key(&succ_key) {
                                continue;
                            }
                            if expl.configs.len() >= max_states {
                                expl.truncated = true;
                                return;
                            }
                            let idx = expl.configs.len();
                            expl.index.insert(succ_key, idx);
                            expl.configs.push(succ_key);
                            expl.parents.push(Some((
                                head,
                                Edge {
                                    scheduled: me,
                                    observed: obs.to_vec(),
                                    next,
                                    prob,
                                },
                            )));
                        }
                    }
                    Err(e) => err = Some(e),
                }
            });
            if let Some(e) = err {
                return Err(e);
            }
            if expl.truncated {
                return Ok(expl);
            }
        }
        head += 1;
    }
    Ok(expl)
}

/// Enumerates observation tuples over a neighbourhood (independent
/// uniform draws, with replacement); the per-tuple probability is the
/// caller's uniform `deg^-m` factor.
fn enumerate_agent_obs(
    states: &[u32],
    nbrs: &[usize],
    m: usize,
    obs: &mut Vec<u32>,
    f: &mut impl FnMut(&[u32]),
) {
    if obs.len() == m {
        f(obs);
        return;
    }
    // Deduplicate by observed word: identical words give identical
    // outcomes, so enumerate each distinct word once with multiplicity
    // folded into the caller's uniform factor — except the factor is
    // per-tuple uniform, so multiplicity must multiply the outcome
    // weight. Keep it simple and exact: enumerate every neighbour.
    for &v in nbrs {
        obs.push(states[v]);
        enumerate_agent_obs(states, nbrs, m, obs, f);
        obs.pop();
    }
}

/// Runs every invariant over every explored per-agent configuration.
pub fn check_invariants_agents(
    expl: &AgentExploration,
    invariants: &[Invariant],
) -> Vec<Violation> {
    let mut violations = Vec::new();
    for (idx, &key) in expl.configs.iter().enumerate() {
        let counts = expl.counts_of(key);
        for inv in invariants {
            if violations.len() >= MAX_VIOLATIONS {
                return violations;
            }
            if let Some((cause, detail)) = (inv.check)(&counts) {
                violations.push(Violation {
                    property: inv.name.to_string(),
                    cause,
                    detail,
                    trace: expl.trace_to(idx),
                    counts,
                });
                break;
            }
        }
    }
    violations
}

/// One-call count-space check: explore from `seed` and evaluate
/// `invariants` over the reachable set, assembling a [`CheckReport`].
pub fn check_counts<P: PackedProtocol + ?Sized>(
    protocol: &P,
    seed: &[u64],
    observations: usize,
    invariants: &[Invariant],
    max_states: usize,
) -> CheckReport {
    let n: u64 = seed.iter().sum();
    let mut report = CheckReport {
        protocol: protocol.name(),
        topology: "complete".to_string(),
        n: n as usize,
        ..CheckReport::default()
    };
    match explore_counts(protocol, seed, observations, max_states) {
        Ok(expl) => {
            report.states_explored = expl.configs.len();
            report.edges = expl.edges;
            report.truncated = expl.truncated;
            report.violations = check_invariants_counts(&expl, invariants);
        }
        Err((cause, detail)) => report.violations.push(Violation {
            property: "rate-table".to_string(),
            cause,
            detail,
            trace: Vec::new(),
            counts: seed.to_vec(),
        }),
    }
    report
}

/// One-call per-agent check: explore from `seed` on `topology` and
/// evaluate `invariants` over the reachable set.
pub fn check_agents<P: PackedProtocol + ?Sized, T: Topology + ?Sized>(
    protocol: &P,
    topology: &T,
    seed: &[u32],
    num_words: u32,
    observations: usize,
    invariants: &[Invariant],
    max_states: usize,
) -> CheckReport {
    let mut report = CheckReport {
        protocol: protocol.name(),
        topology: topology.name(),
        n: seed.len(),
        ..CheckReport::default()
    };
    match explore_agents(
        protocol,
        topology,
        seed,
        num_words,
        observations,
        max_states,
    ) {
        Ok(expl) => {
            report.states_explored = expl.configs.len();
            report.edges = expl.edges;
            report.truncated = expl.truncated;
            report.violations = check_invariants_agents(&expl, invariants);
        }
        Err((cause, detail)) => report.violations.push(Violation {
            property: "rate-table".to_string(),
            cause,
            detail,
            trace: Vec::new(),
            counts: Vec::new(),
        }),
    }
    report
}
