//! Fail-closed bounded model checking for population protocols.
//!
//! The statistical equivalence batteries (`pp-stats`) reject injected
//! bugs at `p < 1e-6` — but only bugs that *change a distribution the
//! harness samples*. A transition that is wrong in a corner the uniform
//! seeding never reaches, or wrong identically on every tier, is
//! invisible to them. This crate closes that gap with exhaustive
//! exploration at small `n`: every reachable configuration is enumerated
//! from the protocol's exact rate table
//! ([`PackedProtocol::outcomes`]),
//! every invariant checked at every configuration, and every failure
//! reported with a concrete counterexample trace.
//!
//! Fail-closed means the checker never passes by omission:
//!
//! * a protocol without a rate table is a violation
//!   ([`Cause::Unverifiable`]), not a skip;
//! * an exploration that hits its state cap is truncated and
//!   [`CheckReport::passed`] is `false`;
//! * a declared distribution that does not sum to 1 aborts the walk.
//!
//! The checks (see EXPERIMENTS.md, "Model checking" for the property
//! table):
//!
//! | check | what it proves |
//! |---|---|
//! | [`check_counts`] / [`check_agents`] | invariants hold at **every** reachable configuration (count space on the complete graph; per-agent space on any topology) |
//! | [`check_dense_rates`] | the dense tier's rate table and batch caps equal the exact dynamics at every reachable configuration (sustainability-boundary exactness) |
//! | [`check_engine_stays_reachable`] / [`check_engine_one_step_support`] | every engine tier's transitions stay inside the exact reachable set / one-step support |
//! | [`check_shock_invariants`] | every [`Shock`](pp_adversary::Shock) variant preserves its monotone invariants through the `Engine` mutation surface |
//!
//! [`BuggedDiversification`] is the gate's negative control: a
//! rule-2 bug implemented consistently on every tier (so no equivalence
//! battery can reject it) that the explorer refutes with a
//! last-dark-killed trace in milliseconds.
//!
//! # Examples
//!
//! ```
//! use pp_check::{check_counts, population_conserved, sustainability};
//! use pp_core::{Diversification, Weights};
//!
//! let protocol = Diversification::new(Weights::uniform(2));
//! // n = 8 all-dark-balanced over 2 colours: words 1 and 3 are dark.
//! let seed = vec![0u64, 4, 0, 4];
//! let report = check_counts(
//!     &protocol,
//!     &seed,
//!     1,
//!     &[population_conserved(8), sustainability(2)],
//!     100_000,
//! );
//! assert!(report.passed(), "{:?}", report.violations);
//! ```

#![forbid(unsafe_code)]
#![deny(missing_docs)]

mod bugged;
mod crosscheck;
mod explore;
mod report;

pub use bugged::BuggedDiversification;
pub use crosscheck::{
    chain_counts_of_words, check_dense_rates, check_engine_one_step_support,
    check_engine_stays_reachable, check_shock_invariants, pad_counts,
};
pub use explore::{
    check_agents, check_counts, check_invariants_agents, check_invariants_counts, checked_outcomes,
    count_successors, explore_agents, explore_counts, population_conserved, support_never_grows,
    sustainability, AgentExploration, CountExploration, Edge, Invariant, MAX_VIOLATIONS, PROB_EPS,
};
pub use report::{Cause, CheckReport, TraceStep, Violation};

use pp_core::AgentState;
use pp_engine::{
    Engine, PackedProtocol, PackedSimulator, Protocol, ShardedSimulator, Simulator, TurboSimulator,
    VecSimulator,
};
use pp_graph::Complete;

/// The five per-agent engine tiers over the complete graph, each started
/// at the same configuration, labelled for reports. (The dense tier needs
/// [`CountProtocol`](pp_dense::CountProtocol) and is built separately.)
#[allow(clippy::type_complexity)]
pub fn complete_tiers<P, S>(
    protocol: &P,
    states: &[S],
    seed: u64,
) -> Vec<(&'static str, Box<dyn Engine<State = S>>)>
where
    P: Protocol<State = S> + PackedProtocol<State = S> + Clone + 'static,
    S: Clone + std::fmt::Debug + Send + Sync + 'static,
{
    let n = states.len();
    vec![
        (
            "agent",
            Box::new(Simulator::new(
                protocol.clone(),
                Complete::new(n),
                states.to_vec(),
                seed,
            )) as Box<dyn Engine<State = S>>,
        ),
        (
            "packed",
            Box::new(PackedSimulator::new(
                protocol.clone(),
                Complete::new(n),
                states,
                seed,
            )),
        ),
        (
            "turbo",
            Box::new(TurboSimulator::<_, _, u32>::new(
                protocol.clone(),
                Complete::new(n),
                states,
                seed,
            )),
        ),
        (
            "sharded",
            Box::new(ShardedSimulator::<_, _, u32>::new(
                protocol.clone(),
                Complete::new(n),
                states,
                seed,
            )),
        ),
        (
            "vec",
            Box::new(VecSimulator::<_, _, u32, 1>::from_seed(
                protocol.clone(),
                Complete::new(n),
                states,
                seed,
            )),
        ),
    ]
}

/// Decodes a count configuration (word-indexed) into a canonical state
/// vector (agents sorted by packed word), for seeding per-agent engines
/// at explored configurations.
pub fn states_of_counts<P: PackedProtocol + ?Sized>(protocol: &P, counts: &[u64]) -> Vec<P::State> {
    let mut states = Vec::new();
    for (w, &c) in counts.iter().enumerate() {
        for _ in 0..c {
            states.push(protocol.unpack(w as u32));
        }
    }
    states
}

/// All-dark-balanced seed counts in packed-word indexing: `n` agents
/// spread over `k` dark classes (words `2i + 1`), matching
/// `init::all_dark_balanced`.
pub fn all_dark_balanced_counts(n: u64, k: usize) -> Vec<u64> {
    let mut counts = vec![0u64; 2 * k];
    let base = n / k as u64;
    let extra = (n % k as u64) as usize;
    for i in 0..k {
        counts[2 * i + 1] = base + u64::from(i < extra);
    }
    counts
}

/// All-dark-balanced seed as per-agent packed words (agents in colour
/// order).
pub fn all_dark_balanced_words(n: usize, k: usize) -> Vec<u32> {
    let counts = all_dark_balanced_counts(n as u64, k);
    let mut words = Vec::with_capacity(n);
    for (w, &c) in counts.iter().enumerate() {
        for _ in 0..c {
            words.push(w as u32);
        }
    }
    words
}

/// Full gate for a Diversification-shaped protocol on the complete graph:
/// exhaustive count exploration with the sustainability and population
/// invariants, dense rate/boundary agreement, tier reachability across
/// all five per-agent tiers plus one-step support on the bit-exact ones,
/// and shock monotone invariants — one [`CheckReport`] with every
/// violation found.
pub fn gate_diversification_complete<P>(
    protocol: &P,
    n: u64,
    max_states: usize,
    tier_steps: u64,
) -> CheckReport
where
    P: Protocol<State = AgentState>
        + PackedProtocol<State = AgentState>
        + pp_dense::CountProtocol
        + HasWeights
        + Clone
        + Send
        + 'static,
{
    let k = protocol.weights_len();
    let seed = all_dark_balanced_counts(n, k);
    let num_words = 2 * k;
    let mut report = check_counts(
        protocol,
        &seed,
        1,
        &[population_conserved(n), sustainability(k)],
        max_states,
    );
    let expl = match explore_counts(protocol, &seed, 1, max_states) {
        Ok(e) => e,
        Err(_) => return report, // already reported by check_counts
    };
    if expl.truncated {
        return report;
    }
    report
        .violations
        .extend(check_dense_rates(protocol, k, &expl));
    let reachable: std::collections::HashSet<Vec<u64>> = expl.configs.iter().cloned().collect();
    let states = states_of_counts(protocol, &seed);
    for (tier, mut engine) in complete_tiers(protocol, &states, 7) {
        if let Some(v) =
            check_engine_stays_reachable(tier, engine.as_mut(), &reachable, num_words, tier_steps)
        {
            report.violations.push(v);
        }
    }
    let mut dense = pp_dense::DenseEngine::from_states(protocol.clone(), &states, k, 7);
    if let Some(v) =
        check_engine_stays_reachable("dense", &mut dense, &reachable, num_words, tier_steps)
    {
        report.violations.push(v);
    }
    for (tier, mut engine) in complete_tiers(protocol, &states, 8) {
        if !matches!(tier, "agent" | "packed") {
            continue; // one-step support is exact only on the bit-exact tiers
        }
        if let Some(v) =
            check_engine_one_step_support(tier, engine.as_mut(), protocol, 1, num_words)
        {
            report.violations.push(v);
        }
    }
    let shocks = pp_adversary::Shock::enumerate(n as usize, k);
    let proto = protocol.clone();
    let states_for_shock = states.clone();
    let mut make = move || {
        Box::new(Simulator::new(
            proto.clone(),
            Complete::new(states_for_shock.len()),
            states_for_shock.clone(),
            9,
        )) as Box<dyn Engine<State = AgentState>>
    };
    report.violations.extend(check_shock_invariants(
        "agent", &mut make, &shocks, num_words, 11,
    ));
    report.violations.truncate(MAX_VIOLATIONS);
    report
}

/// `Weights::len` without naming the concrete protocol type — the two
/// Diversification variants both expose their weight table.
pub trait HasWeights {
    /// Number of colours in the weight table.
    fn weights_len(&self) -> usize;
}

impl HasWeights for pp_core::Diversification {
    fn weights_len(&self) -> usize {
        self.num_colours()
    }
}

impl HasWeights for BuggedDiversification {
    fn weights_len(&self) -> usize {
        self.num_colours()
    }
}
