//! Cross-checks of the engine tiers against the exact explorer.
//!
//! Three checks, all fail-closed:
//!
//! * [`check_dense_rates`] — the dense tier's [`CountProtocol`] rate
//!   table must equal the explorer's aggregated transition probabilities
//!   at **every** reachable count configuration, and its batch caps must
//!   respect the sustainability boundary exactly (cap 0 wherever the
//!   exact dynamics forbid the channel);
//! * [`check_engine_stays_reachable`] — a tier stepping from an explored
//!   configuration must land inside the exact reachable set (this covers
//!   the batching tiers, whose step granularity is coarser than one
//!   interaction);
//! * [`check_shock_invariants`] — every [`Shock`] variant applied through
//!   the shared [`Engine`] mutation surface must satisfy its declared
//!   monotone invariants on class counts.

use crate::explore::{count_successors, CountExploration, MAX_VIOLATIONS, PROB_EPS};
use crate::report::{Cause, TraceStep, Violation};
use pp_adversary::{apply, Shock};
use pp_core::AgentState;
use pp_dense::CountProtocol;
use pp_engine::{Engine, PackedProtocol};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::collections::HashSet;

/// Chain class (dense layout: dark `0..k`, light `k..2k`) of a packed
/// word (`colour << 1 | shade`).
fn chain_of_word(word: u32, k: usize) -> usize {
    let colour = (word >> 1) as usize;
    if word & 1 == 1 {
        colour
    } else {
        k + colour
    }
}

/// Packed word of a chain class.
fn word_of_chain(class: usize, k: usize) -> u32 {
    if class < k {
        (class as u32) << 1 | 1
    } else {
        ((class - k) as u32) << 1
    }
}

/// Word-layout counts (`colour << 1 | shade` indexing) → chain-layout
/// counts (dark `0..k`, light `k..2k`).
pub fn chain_counts_of_words(counts: &[u64], k: usize) -> Vec<u64> {
    let mut chain = vec![0u64; 2 * k];
    for (w, &c) in counts.iter().enumerate() {
        chain[chain_of_word(w as u32, k)] = c;
    }
    chain
}

/// Verifies, at every configuration of an exhaustive count exploration,
/// that the [`CountProtocol`] rate table agrees with the explorer's
/// aggregated per-channel transition probability, and that the batch caps
/// are boundary-exact: a channel with positive rate must be allowed to
/// fire (`cap ≥ 1`), and a channel whose firing the exact dynamics forbid
/// (aggregate probability 0 from every reachable configuration where its
/// source class is populated at the invariant boundary) must have `cap
/// 0` there.
///
/// This is the sustainability-boundary exactness property: the dense
/// tier's τ-leap may only ever sample transitions the agent-based
/// dynamics can take, configuration by configuration.
pub fn check_dense_rates<P>(protocol: &P, k: usize, expl: &CountExploration) -> Vec<Violation>
where
    P: CountProtocol + PackedProtocol + ?Sized,
{
    let channels = CountProtocol::channels(protocol, 2 * k);
    let mut violations = Vec::new();
    for counts in &expl.configs {
        if violations.len() >= MAX_VIOLATIONS {
            break;
        }
        let n: u64 = counts.iter().sum();
        let chain = chain_counts_of_words(counts, k);
        let mut rates = vec![0.0; channels.len()];
        CountProtocol::rates(protocol, &chain, n, &mut rates);
        // Aggregate the explorer's exact edge probabilities per channel.
        let mut aggregate = vec![0.0; channels.len()];
        let succs = match count_successors(protocol, counts, 1) {
            Ok(s) => s,
            Err((cause, detail)) => {
                violations.push(Violation {
                    property: "dense-rate-agreement".to_string(),
                    cause,
                    detail,
                    trace: Vec::new(),
                    counts: counts.clone(),
                });
                break;
            }
        };
        let mut stray = None;
        for (_, edge) in &succs {
            let src = chain_of_word(edge.scheduled, k);
            let dst = chain_of_word(edge.next, k);
            match channels.iter().position(|c| c.src == src && c.dst == dst) {
                Some(c) => aggregate[c] += edge.prob,
                None => stray = Some((src, dst, edge.prob)),
            }
        }
        if let Some((src, dst, prob)) = stray {
            violations.push(Violation {
                property: "dense-rate-agreement".to_string(),
                cause: Cause::RateMismatch,
                detail: format!(
                    "exact transition {src} -> {dst} (p={prob:.6}) has no dense channel"
                ),
                trace: Vec::new(),
                counts: counts.clone(),
            });
            continue;
        }
        for (c, channel) in channels.iter().enumerate() {
            if (aggregate[c] - rates[c]).abs() > PROB_EPS {
                violations.push(Violation {
                    property: "dense-rate-agreement".to_string(),
                    cause: Cause::RateMismatch,
                    detail: format!(
                        "channel {} -> {}: dense rate {:.9} != exact {:.9} at chain counts {:?}",
                        channel.src, channel.dst, rates[c], aggregate[c], chain
                    ),
                    trace: Vec::new(),
                    counts: counts.clone(),
                });
                break;
            }
            let cap = CountProtocol::batch_cap(protocol, c, &chain);
            if rates[c] > PROB_EPS && cap == 0 {
                violations.push(Violation {
                    property: "dense-boundary-exactness".to_string(),
                    cause: Cause::BoundaryMismatch,
                    detail: format!(
                        "channel {} -> {} has rate {:.9} but batch cap 0",
                        channel.src, channel.dst, rates[c]
                    ),
                    trace: Vec::new(),
                    counts: counts.clone(),
                });
                break;
            }
            // The fail-closed direction: a cap that lets a forbidden
            // channel fire. Firing moves one agent src -> dst; if the
            // resulting count configuration is NOT in the exact
            // reachable set, the τ-leap could leave it.
            if cap > 0 && rates[c] <= PROB_EPS && chain[channel.src] > 0 {
                let src_word = word_of_chain(channel.src, k);
                let dst_word = word_of_chain(channel.dst, k);
                let mut fired = counts.clone();
                fired[src_word as usize] -= 1;
                fired[dst_word as usize] += 1;
                if !expl.index.contains_key(&fired) {
                    violations.push(Violation {
                        property: "dense-boundary-exactness".to_string(),
                        cause: Cause::BoundaryMismatch,
                        detail: format!(
                            "channel {} -> {} has zero exact rate but cap {} would step \
                             outside the reachable set",
                            channel.src, channel.dst, cap
                        ),
                        trace: Vec::new(),
                        counts: counts.clone(),
                    });
                    break;
                }
            }
        }
    }
    violations
}

/// Pads engine class counts to the class-universe width for set-membership
/// comparison (engines trim trailing unoccupied words).
pub fn pad_counts(counts: &[u64], num_words: usize) -> Vec<u64> {
    let mut out = counts.to_vec();
    assert!(
        out.len() <= num_words || out[num_words..].iter().all(|&c| c == 0),
        "engine reported an occupied word outside the {num_words}-class universe"
    );
    out.resize(num_words.max(out.len()), 0);
    out.truncate(num_words);
    out
}

/// Steps an engine tier `steps` times from its current (explored)
/// configuration, asserting after every step that its class counts remain
/// inside the exact reachable set. Returns the first divergence, if any.
///
/// This is the tier cross-check the issue's gate requires: a transition
/// implementation whose support exceeds the declared rate table — on any
/// tier, including the batching ones — steps outside the reachable set
/// and is caught here without any statistical tolerance.
pub fn check_engine_stays_reachable<S: Clone + std::fmt::Debug + Send + Sync>(
    tier: &str,
    engine: &mut dyn Engine<State = S>,
    reachable: &HashSet<Vec<u64>>,
    num_words: usize,
    steps: u64,
) -> Option<Violation> {
    for _ in 0..steps {
        engine.run(1);
        let counts = pad_counts(&engine.class_counts(), num_words);
        if !reachable.contains(&counts) {
            return Some(Violation {
                property: "tier-reachability".to_string(),
                cause: Cause::TierDiverged,
                detail: format!(
                    "tier `{tier}` stepped to {:?} at step {}, outside the exact reachable set",
                    counts,
                    engine.step_count()
                ),
                trace: Vec::new(),
                counts,
            });
        }
    }
    None
}

/// Single-interaction support check for the bit-exact tiers: one `run(1)`
/// from an explored configuration must land in the configuration itself
/// (a no-op interaction) or one of its exact successors.
pub fn check_engine_one_step_support<S: Clone + std::fmt::Debug + Send + Sync, P>(
    tier: &str,
    engine: &mut dyn Engine<State = S>,
    protocol: &P,
    observations: usize,
    num_words: usize,
) -> Option<Violation>
where
    P: PackedProtocol + ?Sized,
{
    let before = pad_counts(&engine.class_counts(), num_words);
    let succs = match count_successors(protocol, &before, observations) {
        Ok(s) => s,
        Err((cause, detail)) => {
            return Some(Violation {
                property: "tier-step-support".to_string(),
                cause,
                detail,
                trace: Vec::new(),
                counts: before,
            })
        }
    };
    let mut allowed: HashSet<Vec<u64>> = succs.into_iter().map(|(c, _)| c).collect();
    allowed.insert(before.clone());
    engine.run(1);
    let after = pad_counts(&engine.class_counts(), num_words);
    if allowed.contains(&after) {
        return None;
    }
    Some(Violation {
        property: "tier-step-support".to_string(),
        cause: Cause::TierDiverged,
        detail: format!("tier `{tier}` stepped {before:?} -> {after:?}, outside the exact support"),
        trace: vec![TraceStep {
            counts: before.clone(),
            scheduled: 0,
            observed: Vec::new(),
            next: 0,
            prob: 0.0,
        }],
        counts: after,
    })
}

/// Applies every shock through the [`Engine`] mutation surface of a
/// freshly built engine and checks the variant's monotone invariants on
/// class counts. `make` builds one engine per shock (shocks mutate).
pub fn check_shock_invariants(
    tier: &str,
    make: &mut dyn FnMut() -> Box<dyn Engine<State = AgentState>>,
    shocks: &[Shock],
    num_words: usize,
    seed: u64,
) -> Vec<Violation> {
    let mut violations = Vec::new();
    for (i, shock) in shocks.iter().enumerate() {
        let mut engine = make();
        if shock.resizes() && !engine.supports_resize() {
            // Graceful degradation is the adversary grid's job; the
            // checker only verifies shocks the engine accepts.
            continue;
        }
        let before = pad_counts(&engine.class_counts(), num_words);
        let mut rng = StdRng::seed_from_u64(seed.wrapping_add(i as u64));
        apply(shock, engine.as_mut(), &mut rng);
        let after = pad_counts(&engine.class_counts(), num_words);
        let pre: u64 = before.iter().sum();
        let post: u64 = after.iter().sum();
        let fail = |detail: String| Violation {
            property: format!("shock-{}", shock.label()),
            cause: Cause::ShockInvariant,
            detail: format!("tier `{tier}`: {detail}"),
            trace: Vec::new(),
            counts: after.clone(),
        };
        match *shock {
            Shock::AddAgents { count, state } => {
                let w = pp_core::packed::pack_state(&state) as usize;
                if post != pre + count as u64 {
                    violations.push(fail(format!(
                        "add_agents({count}) took population {pre} -> {post}"
                    )));
                } else if after
                    .iter()
                    .enumerate()
                    .any(|(i, &c)| c != before[i] + if i == w { count as u64 } else { 0 })
                {
                    violations.push(fail(format!(
                        "add_agents changed classes other than word {w}: {before:?} -> {after:?}"
                    )));
                }
            }
            Shock::InjectColour { colour, recruits } => {
                let dark = after.get(2 * colour.index() + 1).copied().unwrap_or(0);
                if post != pre {
                    violations.push(fail(format!(
                        "inject_colour changed population {pre} -> {post}"
                    )));
                } else if dark < recruits as u64 {
                    violations.push(fail(format!(
                        "inject_colour({recruits}) left only {dark} dark agents of colour {}",
                        colour.index()
                    )));
                }
            }
            Shock::RetireColour {
                colour,
                replacement,
            } => {
                let c = colour.index();
                let r = replacement.index();
                let support = after[2 * c] + after[2 * c + 1];
                let expected_dark_r = before[2 * r + 1] + before[2 * c] + before[2 * c + 1];
                if post != pre {
                    violations.push(fail(format!(
                        "retire_colour changed population {pre} -> {post}"
                    )));
                } else if support != 0 {
                    violations.push(fail(format!(
                        "retire_colour left {support} supporters of colour {c}"
                    )));
                } else if after[2 * r + 1] != expected_dark_r {
                    violations.push(fail(format!(
                        "retire_colour moved mass wrongly: dark {r} is {} (expected {})",
                        after[2 * r + 1],
                        expected_dark_r
                    )));
                }
            }
            Shock::RemoveAgents { count } => {
                if post != pre - count as u64 {
                    violations.push(fail(format!(
                        "remove_agents({count}) took population {pre} -> {post}"
                    )));
                } else if after.iter().enumerate().any(|(i, &c)| c > before[i]) {
                    violations.push(fail(format!(
                        "remove_agents grew a class: {before:?} -> {after:?}"
                    )));
                }
            }
        }
    }
    violations
}
