//! The injected known-bad protocol variant the CI gate must catch.
//!
//! [`BuggedDiversification`] drops the observed-shade condition from rule
//! 2: a dark agent softens (w.p. `1/wᵢ`) after observing **any**
//! same-colour agent, not only another *dark* one. The bug is implemented
//! consistently on every tier — generic, packed (turbo and ensemble
//! inherit the packed rule), and count-based — so the workspace's
//! tier-equivalence batteries *cannot* reject it: shared-seed trajectories
//! still match bit for bit, and every tier samples the same (wrong)
//! distribution. Statistically the stationary behaviour is also close to
//! the correct protocol's whenever dark counts are large, because the
//! extra softening mass is `O(aᵢ/Aᵢ)` relative.
//!
//! What the bug breaks is the paper's *sustainability invariant*: with
//! `darkᵢ = 1` and a light agent of colour `i` observable, the last dark
//! agent can soften — precisely the unreachable-under-statistics corner
//! the bounded explorer enumerates. `pp-check` finds a counterexample
//! trace in milliseconds at `n ≤ 12`.

use pp_core::{AgentState, Diversification, Shade, Weights};
use pp_dense::{Channel, CountProtocol};
use pp_engine::{PackedProtocol, Protocol};
use rand::{Rng, RngExt};

/// Diversification with rule 2's observed-shade check removed (see module
/// docs). For the gate's fail-closed demonstration only.
#[derive(Debug, Clone)]
pub struct BuggedDiversification {
    inner: Diversification,
}

impl BuggedDiversification {
    /// Wraps the weight table of the correct protocol.
    pub fn new(weights: Weights) -> Self {
        BuggedDiversification {
            inner: Diversification::new(weights),
        }
    }

    /// The weight table.
    pub fn weights(&self) -> &Weights {
        self.inner.weights()
    }

    /// Number of colours.
    pub fn num_colours(&self) -> usize {
        self.inner.num_colours()
    }
}

impl Protocol for BuggedDiversification {
    type State = AgentState;

    fn transition(
        &self,
        me: &AgentState,
        observed: &[&AgentState],
        rng: &mut dyn Rng,
    ) -> AgentState {
        let v = observed[0];
        match (me.shade, v.shade) {
            (Shade::Light, Shade::Dark) => AgentState::dark(v.colour),
            // BUG: the guard should also require `v.shade == Dark`; as
            // written, a dark agent observing a same-colour *light* agent
            // also rolls the softening die.
            (Shade::Dark, _) if me.colour == v.colour => {
                if rng.random_bool(self.weights().inverse(me.colour.index())) {
                    AgentState::light(me.colour)
                } else {
                    *me
                }
            }
            _ => *me,
        }
    }

    fn name(&self) -> String {
        "bugged-diversification".to_string()
    }
}

impl PackedProtocol for BuggedDiversification {
    type State = AgentState;

    fn pack(&self, state: &AgentState) -> u32 {
        pp_core::packed::pack_state(state)
    }

    fn unpack(&self, packed: u32) -> AgentState {
        pp_core::packed::unpack_state(packed)
    }

    #[inline]
    fn transition<R: Rng>(&self, me: u32, observed: &[u32], rng: &mut R) -> u32 {
        let v = observed[0];
        if me & 1 == 0 {
            if v & 1 == 1 {
                v
            } else {
                me
            }
        } else if v >> 1 == me >> 1 {
            // BUG: colour-only comparison (`v == me` is correct) — the
            // same bug as the generic rule, consuming randomness
            // identically, so the bit-exact equivalence contract holds.
            if rng.random_bool(self.weights().inverse((me >> 1) as usize)) {
                me & !1
            } else {
                me
            }
        } else {
            me
        }
    }

    fn outcomes(&self, me: u32, observed: &[u32]) -> Option<Vec<(u32, f64)>> {
        let v = observed[0];
        Some(if me & 1 == 0 {
            vec![(if v & 1 == 1 { v } else { me }, 1.0)]
        } else if v >> 1 == me >> 1 {
            let p = self.weights().inverse((me >> 1) as usize);
            if p >= 1.0 {
                vec![(me & !1, 1.0)]
            } else {
                vec![(me & !1, p), (me, 1.0 - p)]
            }
        } else {
            vec![(me, 1.0)]
        })
    }

    fn name(&self) -> String {
        "bugged-diversification".to_string()
    }
}

/// The same bug at count level: softening fires on observing *any*
/// same-colour agent (`Aᵢ + aᵢ − 1` partners instead of `Aᵢ − 1`), and the
/// batch cap no longer protects the last dark agent.
impl CountProtocol for BuggedDiversification {
    fn channels(&self, num_classes: usize) -> Vec<Channel> {
        CountProtocol::channels(&self.inner, num_classes)
    }

    fn rates(&self, counts: &[u64], n: u64, rates: &mut [f64]) {
        let k = self.num_colours();
        let nf = n as f64;
        let nm1 = (n - 1) as f64;
        let mut idx = 0;
        for j in 0..k {
            let light_j = counts[k + j] as f64 / nf;
            for &dark_i in &counts[..k] {
                rates[idx] = light_j * (dark_i as f64 / nm1);
                idx += 1;
            }
        }
        for i in 0..k {
            let dark_i = counts[i] as f64;
            let same_colour_partners = (dark_i + counts[k + i] as f64 - 1.0).max(0.0);
            rates[idx] = (dark_i / nf) * (same_colour_partners / nm1) / self.weights().get(i);
            idx += 1;
        }
    }

    fn batch_cap(&self, channel: usize, counts: &[u64]) -> u64 {
        let k = self.num_colours();
        if channel < k * k {
            counts[k + channel / k]
        } else {
            // BUG: no `− 1` — the cap lets softening consume the last
            // dark agent of a colour.
            counts[channel - k * k]
        }
    }

    fn name(&self) -> String {
        "bugged-diversification".to_string()
    }
}
