//! Counterexample traces and the check report.

use std::fmt;

/// Why a property failed — a short machine-readable tag, one per failure
/// mode, so CI and the result JSON can classify violations without parsing
/// prose.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Cause {
    /// A reachable configuration lost the last dark agent of a colour
    /// (violates the paper's sustainability invariant).
    LastDarkKilled,
    /// A transition changed the number of agents.
    PopulationChanged,
    /// A transition produced a packed word outside the declared class
    /// universe.
    ClassOutOfRange,
    /// A declared outcome distribution has a probability outside `[0, 1]`
    /// or does not sum to 1.
    BadDistribution,
    /// A consensus-protocol transition revived a colour with no remaining
    /// supporters (support must be monotone non-increasing).
    ExtinctColourRevived,
    /// The dense tier's exact rate table disagrees with the explorer's
    /// aggregated transition probabilities at an explored configuration.
    RateMismatch,
    /// The dense tier's batch cap would let a channel fire at a boundary
    /// configuration where the exact dynamics forbid it (or vice versa).
    BoundaryMismatch,
    /// An engine tier stepped from an explored configuration to one
    /// outside the exact reachable set.
    TierDiverged,
    /// A shock applied through the `Engine` surface broke one of its
    /// declared monotone invariants.
    ShockInvariant,
    /// The protocol does not expose an exact rate table
    /// (`PackedProtocol::outcomes` returned `None`) — fail closed: an
    /// unverifiable protocol is a violation, not a skip.
    Unverifiable,
}

impl Cause {
    /// The stable tag used in tables and the result JSON.
    pub fn tag(&self) -> &'static str {
        match self {
            Cause::LastDarkKilled => "last-dark-killed",
            Cause::PopulationChanged => "population-changed",
            Cause::ClassOutOfRange => "class-out-of-range",
            Cause::BadDistribution => "bad-distribution",
            Cause::ExtinctColourRevived => "extinct-colour-revived",
            Cause::RateMismatch => "rate-mismatch",
            Cause::BoundaryMismatch => "boundary-mismatch",
            Cause::TierDiverged => "tier-diverged",
            Cause::ShockInvariant => "shock-invariant",
            Cause::Unverifiable => "unverifiable",
        }
    }
}

impl fmt::Display for Cause {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.tag())
    }
}

/// One step of a counterexample trace: the configuration the step left,
/// and the transition taken out of it.
///
/// Configurations are class-count vectors indexed by packed word (the
/// engine observable), so a trace reads the same regardless of whether the
/// count-based or the per-agent explorer produced it.
#[derive(Debug, Clone, PartialEq)]
pub struct TraceStep {
    /// Class counts (indexed by packed word) before the transition.
    pub counts: Vec<u64>,
    /// Packed word of the scheduled agent.
    pub scheduled: u32,
    /// Packed word(s) the scheduled agent observed.
    pub observed: Vec<u32>,
    /// Packed word the scheduled agent transitioned to.
    pub next: u32,
    /// Exact probability of this transition out of `counts`.
    pub prob: f64,
}

impl TraceStep {
    /// Compact single-line rendering: `[counts] s --obs--> next (p=..)`.
    pub fn render(&self) -> String {
        let obs: Vec<String> = self.observed.iter().map(u32::to_string).collect();
        format!(
            "{:?} word {} observes [{}] -> {} (p={:.6})",
            self.counts,
            self.scheduled,
            obs.join(","),
            self.next,
            self.prob
        )
    }
}

/// One property violation: what failed, why, and the shortest explored
/// path from the seed configuration into the violating one.
#[derive(Debug, Clone)]
pub struct Violation {
    /// Name of the violated property (e.g. `sustainability`).
    pub property: String,
    /// Machine-readable failure classification.
    pub cause: Cause,
    /// Human-readable specifics (which colour, which channel, which tier).
    pub detail: String,
    /// Configuration sequence from the seed to the violation; empty when
    /// the violation is not tied to a reachability path (rate mismatches,
    /// shock invariants).
    pub trace: Vec<TraceStep>,
    /// The violating configuration's class counts.
    pub counts: Vec<u64>,
}

impl Violation {
    /// The trace rendered line by line, ending at the violating counts.
    pub fn render_trace(&self) -> Vec<String> {
        let mut out: Vec<String> = self.trace.iter().map(TraceStep::render).collect();
        out.push(format!("{:?} <- VIOLATION: {}", self.counts, self.cause));
        out
    }
}

/// The outcome of one check run: exploration size plus every violation
/// found. Empty `violations` means the gate passes.
#[derive(Debug, Clone, Default)]
pub struct CheckReport {
    /// Protocol under check.
    pub protocol: String,
    /// Topology family explored.
    pub topology: String,
    /// Population size.
    pub n: usize,
    /// Reachable configurations discovered.
    pub states_explored: usize,
    /// Transitions followed.
    pub edges: u64,
    /// `true` if exploration stopped at the state cap before exhausting
    /// the reachable set — a truncated run proves nothing and callers must
    /// treat it as a failure (fail closed).
    pub truncated: bool,
    /// Everything that failed.
    pub violations: Vec<Violation>,
}

impl CheckReport {
    /// `true` when the run explored the full reachable set and found no
    /// violation.
    pub fn passed(&self) -> bool {
        !self.truncated && self.violations.is_empty()
    }
}
