//! The model-check gate end to end: shipped protocols pass, the injected
//! bug is refuted with a counterexample trace, and the statistical
//! equivalence contract demonstrably cannot reject the injected bug.

use pp_baselines::Voter;
use pp_check::{
    all_dark_balanced_counts, all_dark_balanced_words, check_agents, check_counts, explore_agents,
    explore_counts, gate_diversification_complete, population_conserved, support_never_grows,
    sustainability, BuggedDiversification, Cause,
};
use pp_core::{init, Diversification, Weights};
use pp_engine::{PackedSimulator, Simulator};
use pp_graph::{Complete, Cycle};

fn weights() -> Weights {
    Weights::new(vec![1.0, 2.0]).unwrap()
}

#[test]
fn shipped_diversification_passes_the_full_gate() {
    let report = gate_diversification_complete(&Diversification::new(weights()), 10, 100_000, 60);
    assert!(report.passed(), "violations: {:#?}", report.violations);
    assert!(report.states_explored > 10, "exploration trivially small");
}

#[test]
fn bugged_diversification_is_refuted_with_a_trace() {
    let report =
        gate_diversification_complete(&BuggedDiversification::new(weights()), 10, 100_000, 60);
    assert!(!report.passed());
    let sustainability_violation = report
        .violations
        .iter()
        .find(|v| v.cause == Cause::LastDarkKilled)
        .expect("the explorer must find the killed last dark agent");
    assert!(
        !sustainability_violation.trace.is_empty(),
        "counterexample must carry a trace"
    );
    // The trace's final transition softens the last dark agent: the
    // violating configuration has a colour with zero dark count.
    let counts = &sustainability_violation.counts;
    assert!(
        counts[1] == 0 || counts[3] == 0,
        "violating counts {counts:?} still have all dark classes populated"
    );
}

#[test]
fn diversification_passes_per_agent_on_the_cycle() {
    let protocol = Diversification::new(weights());
    let seed = all_dark_balanced_words(7, 2);
    let report = check_agents(
        &protocol,
        &Cycle::new(7),
        &seed,
        4,
        1,
        &[population_conserved(7), sustainability(2)],
        2_000_000,
    );
    assert!(report.passed(), "violations: {:#?}", report.violations);
    assert!(report.states_explored > 100);
}

#[test]
fn bugged_diversification_fails_per_agent_on_the_cycle() {
    let protocol = BuggedDiversification::new(weights());
    let seed = all_dark_balanced_words(7, 2);
    let report = check_agents(
        &protocol,
        &Cycle::new(7),
        &seed,
        4,
        1,
        &[population_conserved(7), sustainability(2)],
        2_000_000,
    );
    assert!(!report.passed());
    assert!(report
        .violations
        .iter()
        .any(|v| v.cause == Cause::LastDarkKilled));
}

#[test]
fn voter_passes_on_complete_and_cycle() {
    // Voter over 3 colours: words are raw colour indices.
    let n = 12usize;
    let seed_counts = vec![4u64, 4, 4];
    let complete = check_counts(
        &Voter,
        &seed_counts,
        1,
        &[
            population_conserved(n as u64),
            support_never_grows(&seed_counts),
        ],
        1_000_000,
    );
    assert!(complete.passed(), "violations: {:#?}", complete.violations);

    let seed_words: Vec<u32> = (0..n as u32).map(|i| i % 3).collect();
    let mut seed_word_counts = vec![0u64; 3];
    for &w in &seed_words {
        seed_word_counts[w as usize] += 1;
    }
    let cycle = check_agents(
        &Voter,
        &Cycle::new(n),
        &seed_words,
        3,
        1,
        &[
            population_conserved(n as u64),
            support_never_grows(&seed_word_counts),
        ],
        2_000_000,
    );
    assert!(cycle.passed(), "violations: {:#?}", cycle.violations);
    assert!(cycle.states_explored > 1_000);
}

#[test]
fn protocol_without_rate_table_fails_closed() {
    // A protocol that keeps the default `outcomes` (None) must be
    // reported unverifiable, not silently passed.
    #[derive(Debug)]
    struct Opaque;
    impl pp_engine::PackedProtocol for Opaque {
        type State = u32;
        fn pack(&self, s: &u32) -> u32 {
            *s
        }
        fn unpack(&self, p: u32) -> u32 {
            p
        }
        fn transition<R: rand::Rng>(&self, _me: u32, observed: &[u32], _rng: &mut R) -> u32 {
            observed[0]
        }
        fn name(&self) -> String {
            "opaque".into()
        }
    }
    let report = check_counts(&Opaque, &[2, 2], 1, &[population_conserved(4)], 1_000);
    assert!(!report.passed());
    assert_eq!(report.violations[0].cause, Cause::Unverifiable);
}

#[test]
fn truncated_exploration_never_passes() {
    let protocol = Diversification::new(weights());
    let seed = all_dark_balanced_counts(12, 2);
    let report = check_counts(&protocol, &seed, 1, &[population_conserved(12)], 3);
    assert!(report.truncated);
    assert!(!report.passed());
}

#[test]
fn exploration_is_exhaustive_on_a_known_space() {
    // Voter, k = 2, complete, n = 4, seed (2, 2): reachable counts are
    // exactly (0,4), (1,3), (2,2), (3,1), (4,0) minus nothing — but
    // support monotonicity means extinct colours never revive, so from
    // (2,2) all five splits with both colours seeded are reachable:
    // (4,0) and (0,4) included (the last supporter can be converted).
    let expl = explore_counts(&Voter, &[2, 2], 1, 1_000).unwrap();
    assert_eq!(expl.configs.len(), 5);
    assert_eq!(
        {
            let mut c: Vec<Vec<u64>> = expl.configs.clone();
            c.sort();
            c
        },
        vec![vec![0, 4], vec![1, 3], vec![2, 2], vec![3, 1], vec![4, 0]]
    );
}

#[test]
fn per_agent_explorer_matches_count_explorer_on_complete() {
    // Same protocol, same seed, both explorers on the complete graph:
    // the per-agent reachable set, projected to counts, must equal the
    // count-based reachable set.
    let protocol = Diversification::new(weights());
    let n = 6usize;
    let seed_words = all_dark_balanced_words(n, 2);
    let seed_counts = all_dark_balanced_counts(n as u64, 2);
    let agents =
        explore_agents(&protocol, &Complete::new(n), &seed_words, 4, 1, 5_000_000).unwrap();
    let counts = explore_counts(&protocol, &seed_counts, 1, 1_000_000).unwrap();
    let mut projected: Vec<Vec<u64>> = agents
        .configs
        .iter()
        .map(|&key| agents.counts_of(key))
        .collect();
    projected.sort();
    projected.dedup();
    let mut exact: Vec<Vec<u64>> = counts.configs.clone();
    exact.sort();
    assert_eq!(projected, exact);
}

#[test]
fn bugged_protocol_is_invisible_to_bit_exact_equivalence() {
    // The statistical/bit-exact harness compares tiers against each
    // other; the injected bug is implemented consistently, so the
    // generic and packed engines agree bit for bit on it — which is
    // exactly why only exhaustive exploration can reject it.
    let w = weights();
    let states = init::all_dark_balanced(24, &w);
    let mut generic = Simulator::new(
        BuggedDiversification::new(w.clone()),
        Complete::new(24),
        states.clone(),
        3,
    );
    let mut packed = PackedSimulator::new(
        BuggedDiversification::new(w.clone()),
        Complete::new(24),
        &states,
        3,
    );
    for _ in 0..10 {
        generic.run(5_000);
        packed.run(5_000);
        assert_eq!(
            generic.population().states(),
            &packed.states_unpacked()[..],
            "tiers diverged — the bug would be statistically detectable"
        );
    }
}
