//! The count-level protocol abstraction.

/// One reaction channel: a single scheduled agent leaves class `src` and
/// enters class `dst`.
///
/// Every protocol in this workspace is *one-way* — only the scheduled agent
/// changes state — so every possible transition moves exactly one agent
/// between two classes, and a configuration's one-step dynamics is fully
/// described by a list of channels plus their per-step firing
/// probabilities.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Channel {
    /// Class losing one agent per firing.
    pub src: usize,
    /// Class gaining one agent per firing.
    pub dst: usize,
}

/// A protocol expressed over *class counts* instead of per-agent states.
///
/// On the complete graph the scheduled agent and its observed partner are
/// uniform draws, so the probability of each transition depends only on the
/// class counts — the exact pairwise interaction-rate table the
/// [`DenseSimulator`](crate::DenseSimulator) batches over.
///
/// Implementations must satisfy, for every reachable `counts`:
///
/// * `rates` sums to at most 1 (the channels are disjoint events of one
///   time-step; the remainder is the no-op probability);
/// * `rates[c] == 0` whenever firing channel `c` would violate a protocol
///   invariant that the agent-based dynamics enforces (e.g. the
///   last-dark-agent rule of Diversification), and [`batch_cap`] bounds how
///   often `c` may fire in one batch so the invariant also survives
///   τ-leaping;
/// * rates match the agent-based [`Protocol`] transition probabilities
///   exactly, including the self-exclusion of the observed partner (the
///   partner is uniform over the *other* `n − 1` agents).
///
/// [`batch_cap`]: CountProtocol::batch_cap
/// [`Protocol`]: https://docs.rs/pp-engine
pub trait CountProtocol {
    /// The channel list for a configuration with `num_classes` classes.
    ///
    /// Called once at simulator construction; order defines the channel
    /// indices passed to [`rates`](CountProtocol::rates) and
    /// [`batch_cap`](CountProtocol::batch_cap).
    ///
    /// # Panics
    ///
    /// Implementations panic if `num_classes` is inconsistent with the
    /// protocol (e.g. not `2k` for a `k`-colour shaded protocol).
    fn channels(&self, num_classes: usize) -> Vec<Channel>;

    /// Fills `rates[c]` with the probability that one time-step fires
    /// channel `c`, given `counts` in a population of `n` agents.
    fn rates(&self, counts: &[u64], n: u64, rates: &mut [f64]);

    /// The largest number of times channel `c` may fire in one batch without
    /// breaking a protocol invariant. Defaults to "source availability" via
    /// the simulator; override to protect absorbing boundaries (e.g.
    /// `A_i − 1` for Diversification's softening channel, so the last dark
    /// agent of a colour is immortal under batching too).
    fn batch_cap(&self, channel: usize, counts: &[u64]) -> u64;

    /// Short name for experiment tables.
    fn name(&self) -> String;
}

impl<P: CountProtocol + ?Sized> CountProtocol for &P {
    fn channels(&self, num_classes: usize) -> Vec<Channel> {
        (**self).channels(num_classes)
    }

    fn rates(&self, counts: &[u64], n: u64, rates: &mut [f64]) {
        (**self).rates(counts, n, rates)
    }

    fn batch_cap(&self, channel: usize, counts: &[u64]) -> u64 {
        (**self).batch_cap(channel, counts)
    }

    fn name(&self) -> String {
        (**self).name()
    }
}
