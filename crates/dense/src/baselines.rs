//! Count-level rate tables for the `pp-baselines` consensus dynamics.
//!
//! These protocols carry a bare colour per agent, so the class space is the
//! `k` colours themselves and a configuration is the vector `(C_1..C_k)`.
//! The channel set of every protocol here is "recolour `a` to `b`" for all
//! ordered pairs `a ≠ b`; only the rates differ.

use crate::{Channel, CountProtocol};
use pp_baselines::{AntiVoter, ThreeMajority, TwoChoices, Voter};

/// All ordered recolouring channels `a → b`, `a ≠ b`, over `k` colours.
fn recolour_channels(k: usize) -> Vec<Channel> {
    assert!(k >= 2, "consensus dynamics need at least two colours");
    let mut channels = Vec::with_capacity(k * (k - 1));
    for a in 0..k {
        for b in 0..k {
            if a != b {
                channels.push(Channel { src: a, dst: b });
            }
        }
    }
    channels
}

/// Iterates `(channel_index, a, b)` in [`recolour_channels`] order.
fn recolour_pairs(k: usize) -> impl Iterator<Item = (usize, usize, usize)> {
    (0..k)
        .flat_map(move |a| (0..k).filter(move |&b| b != a).map(move |b| (a, b)))
        .enumerate()
        .map(|(idx, (a, b))| (idx, a, b))
}

/// Voter model on counts: initiator of colour `a` observes colour `b` and
/// adopts it — rate `(C_a/n)·(C_b/(n−1))` for `a ≠ b`.
impl CountProtocol for Voter {
    fn channels(&self, num_classes: usize) -> Vec<Channel> {
        recolour_channels(num_classes)
    }

    fn rates(&self, counts: &[u64], n: u64, rates: &mut [f64]) {
        let nf = n as f64;
        let nm1 = (n - 1) as f64;
        for (idx, a, b) in recolour_pairs(counts.len()) {
            rates[idx] = (counts[a] as f64 / nf) * (counts[b] as f64 / nm1);
        }
    }

    fn batch_cap(&self, channel: usize, counts: &[u64]) -> u64 {
        let k = counts.len();
        counts[channel / (k - 1)]
    }

    fn name(&self) -> String {
        "voter".to_string()
    }
}

/// 2-Choices on counts: the initiator samples two partners (independently,
/// both excluding itself) and recolours only if they agree — rate
/// `(C_a/n)·(C_b/(n−1))²` for `a ≠ b`.
impl CountProtocol for TwoChoices {
    fn channels(&self, num_classes: usize) -> Vec<Channel> {
        recolour_channels(num_classes)
    }

    fn rates(&self, counts: &[u64], n: u64, rates: &mut [f64]) {
        let nf = n as f64;
        let nm1 = (n - 1) as f64;
        for (idx, a, b) in recolour_pairs(counts.len()) {
            let pb = counts[b] as f64 / nm1;
            rates[idx] = (counts[a] as f64 / nf) * pb * pb;
        }
    }

    fn batch_cap(&self, channel: usize, counts: &[u64]) -> u64 {
        let k = counts.len();
        counts[channel / (k - 1)]
    }

    fn name(&self) -> String {
        "2-choices".to_string()
    }
}

/// 3-Majority on counts: among `{self, v, w}` adopt the majority colour,
/// breaking three-way ties uniformly. For `b ≠ a` the recolour rate is
/// `(C_a/n)·[ (C_b/(n−1))² + (2/3)·(C_b/(n−1))·((n − C_a − C_b)/(n−1)) ]`
/// — the agreeing-pair case plus a third of the all-distinct cases
/// involving `b`.
impl CountProtocol for ThreeMajority {
    fn channels(&self, num_classes: usize) -> Vec<Channel> {
        recolour_channels(num_classes)
    }

    fn rates(&self, counts: &[u64], n: u64, rates: &mut [f64]) {
        let nf = n as f64;
        let nm1 = (n - 1) as f64;
        for (idx, a, b) in recolour_pairs(counts.len()) {
            let ca = counts[a] as f64;
            let pb = counts[b] as f64 / nm1;
            let others = (nf - ca - counts[b] as f64).max(0.0) / nm1;
            rates[idx] = (ca / nf) * (pb * pb + (2.0 / 3.0) * pb * others);
        }
    }

    fn batch_cap(&self, channel: usize, counts: &[u64]) -> u64 {
        let k = counts.len();
        counts[channel / (k - 1)]
    }

    fn name(&self) -> String {
        "3-majority".to_string()
    }
}

/// Anti-Voter on counts (`k = 2`): the initiator flips exactly when it
/// observes its *own* colour — rate `(C_a/n)·((C_a−1)/(n−1))`, which
/// vanishes at `C_a = 1`, so (like Diversification) the dynamics itself
/// keeps both colours alive; the batch cap `C_a − 1` preserves that under
/// leaping.
impl CountProtocol for AntiVoter {
    fn channels(&self, num_classes: usize) -> Vec<Channel> {
        assert_eq!(num_classes, 2, "anti-voter is a two-colour protocol");
        vec![Channel { src: 0, dst: 1 }, Channel { src: 1, dst: 0 }]
    }

    fn rates(&self, counts: &[u64], n: u64, rates: &mut [f64]) {
        let nf = n as f64;
        let nm1 = (n - 1) as f64;
        for a in 0..2 {
            let ca = counts[a] as f64;
            rates[a] = (ca / nf) * ((ca - 1.0).max(0.0) / nm1);
        }
    }

    fn batch_cap(&self, channel: usize, counts: &[u64]) -> u64 {
        counts[channel].saturating_sub(1)
    }

    fn name(&self) -> String {
        "anti-voter".to_string()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::DenseSimulator;

    #[test]
    fn voter_reaches_consensus_on_counts() {
        let mut sim = DenseSimulator::new(Voter, vec![40u64, 30, 30], 3);
        let hit = sim.run_until(100_000_000, 1_000, |counts, _| {
            counts.iter().filter(|&&c| c > 0).count() == 1
        });
        assert!(
            hit.is_some(),
            "voter never hit consensus: {:?}",
            sim.counts()
        );
        assert_eq!(sim.counts().iter().sum::<u64>(), 100);
    }

    #[test]
    fn two_choices_beats_voter_to_consensus() {
        let consensus_time = |sim: &mut DenseSimulator<_>| {
            sim.run_until(1_000_000_000, 1_000, |counts: &[u64], _| {
                counts.iter().filter(|&&c| c > 0).count() == 1
            })
        };
        // 2-Choices amplifies an initial majority; Voter drifts.
        let mut two = DenseSimulator::new(TwoChoices, vec![700u64, 300], 5);
        let t_two = consensus_time(&mut two).expect("2-choices converges");
        assert!(t_two > 0);
        let winner = two.counts().iter().position(|&c| c > 0).unwrap();
        assert_eq!(winner, 0, "2-choices flipped a 70/30 majority");
    }

    #[test]
    fn three_majority_rates_are_probabilities() {
        let p = ThreeMajority;
        let counts = vec![50u64, 30, 20];
        let channels = p.channels(3);
        let mut rates = vec![0.0; channels.len()];
        p.rates(&counts, 100, &mut rates);
        let total: f64 = rates.iter().sum();
        assert!(total > 0.0 && total <= 1.0, "total {total}");
    }

    #[test]
    fn anti_voter_equilibrates_and_never_dies() {
        let mut sim = DenseSimulator::new(AntiVoter, vec![999u64, 1], 7);
        let mut min_seen = u64::MAX;
        sim.run_observed(2_000_000, 1_000, |_, counts| {
            min_seen = min_seen.min(counts[0]).min(counts[1]);
        });
        assert!(min_seen >= 1, "anti-voter extinguished a colour");
        // Half/half equilibrium within a loose band.
        let frac = sim.counts()[0] as f64 / 1_000.0;
        assert!((frac - 0.5).abs() < 0.15, "fraction {frac}");
    }

    #[test]
    fn channel_decode_matches_enumeration() {
        let k = 4;
        let channels = recolour_channels(k);
        for (idx, a, b) in recolour_pairs(k) {
            assert_eq!(channels[idx], Channel { src: a, dst: b });
        }
        // batch_cap uses src = idx / (k - 1).
        let counts = vec![10u64, 20, 30, 40];
        for (idx, a, _) in recolour_pairs(k) {
            assert_eq!(Voter.batch_cap(idx, &counts), counts[a]);
        }
    }
}
