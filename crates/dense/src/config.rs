//! The `k × 2` count matrix describing a complete-graph configuration.

use pp_core::{AgentState, ConfigStats};

/// The counts `(A_1..A_k, a_1..a_k)` of a shaded configuration — on the
/// complete graph this is the *entire* state of the process, which is what
/// lets [`DenseSimulator`](crate::DenseSimulator) replace `n` agent states
/// with `2k` integers.
///
/// Class layout follows `AgentState::chain_index`: dark colours map to
/// classes `0..k`, light colours to `k..2k`.
///
/// # Examples
///
/// ```
/// use pp_dense::CountConfig;
///
/// let c = CountConfig::all_dark_balanced(10, 4);
/// assert_eq!(c.population(), 10);
/// assert_eq!(c.num_colours(), 4);
/// assert!(c.stats().all_colours_alive());
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CountConfig {
    dark: Vec<u64>,
    light: Vec<u64>,
}

impl CountConfig {
    /// Wraps explicit per-colour dark/light counts.
    ///
    /// # Panics
    ///
    /// Panics if the vectors differ in length or are empty.
    pub fn new(dark: Vec<u64>, light: Vec<u64>) -> Self {
        assert_eq!(dark.len(), light.len(), "count vectors must align");
        assert!(!dark.is_empty(), "need at least one colour");
        CountConfig { dark, light }
    }

    /// The balanced all-dark start of `init::all_dark_balanced`, built in
    /// `O(k)` without materialising agent states (round-robin assignment:
    /// each colour gets `⌈n/k⌉` or `⌊n/k⌋` agents).
    ///
    /// # Panics
    ///
    /// Panics if `n < k` or `k == 0`.
    pub fn all_dark_balanced(n: u64, k: usize) -> Self {
        assert!(k > 0, "need at least one colour");
        assert!(n >= k as u64, "need at least one agent per colour");
        let base = n / k as u64;
        let extra = (n % k as u64) as usize;
        let dark = (0..k).map(|i| base + u64::from(i < extra)).collect();
        CountConfig {
            dark,
            light: vec![0; k],
        }
    }

    /// The adversarial single-minority all-dark start of
    /// `init::all_dark_single_minority`: colour 0 holds `n − k + 1` agents,
    /// every other colour exactly one.
    ///
    /// # Panics
    ///
    /// Panics if `n < k` or `k == 0`.
    pub fn all_dark_single_minority(n: u64, k: usize) -> Self {
        assert!(k > 0, "need at least one colour");
        assert!(n >= k as u64, "need at least one agent per colour");
        let mut dark = vec![1u64; k];
        dark[0] = n - (k as u64 - 1);
        CountConfig {
            dark,
            light: vec![0; k],
        }
    }

    /// Tallies an explicit agent-state vector (for cross-engine tests).
    ///
    /// # Panics
    ///
    /// Panics if any colour index is `>= k`.
    pub fn from_states(states: &[AgentState], k: usize) -> Self {
        let stats = ConfigStats::from_states(states, k);
        Self::from_stats(&stats)
    }

    /// Converts from the checker-facing counts type.
    pub fn from_stats(stats: &ConfigStats) -> Self {
        CountConfig {
            dark: stats.dark_counts().iter().map(|&c| c as u64).collect(),
            light: stats.light_counts().iter().map(|&c| c as u64).collect(),
        }
    }

    /// Converts to [`ConfigStats`] so every `pp-core` checker (diversity
    /// error, fairness, sustainability, `GoodSet` regions) consumes the
    /// dense engine's output unchanged.
    pub fn stats(&self) -> ConfigStats {
        ConfigStats::from_counts(
            self.dark.iter().map(|&c| c as usize).collect(),
            self.light.iter().map(|&c| c as usize).collect(),
        )
    }

    /// The flat class vector (dark `0..k`, light `k..2k`) the
    /// [`DenseSimulator`](crate::DenseSimulator) operates on.
    pub fn to_classes(&self) -> Vec<u64> {
        let mut classes = self.dark.clone();
        classes.extend_from_slice(&self.light);
        classes
    }

    /// Rebuilds the matrix from a flat class vector.
    ///
    /// # Panics
    ///
    /// Panics if the length is odd or zero.
    pub fn from_classes(classes: &[u64]) -> Self {
        assert!(
            !classes.is_empty() && classes.len().is_multiple_of(2),
            "class vector must have length 2k"
        );
        let k = classes.len() / 2;
        CountConfig {
            dark: classes[..k].to_vec(),
            light: classes[k..].to_vec(),
        }
    }

    /// Number of colours `k`.
    pub fn num_colours(&self) -> usize {
        self.dark.len()
    }

    /// Population size `n = Σ (A_i + a_i)`.
    pub fn population(&self) -> u64 {
        self.dark.iter().sum::<u64>() + self.light.iter().sum::<u64>()
    }

    /// `A_i`: dark support of colour `i`.
    pub fn dark(&self, i: usize) -> u64 {
        self.dark[i]
    }

    /// `a_i`: light support of colour `i`.
    pub fn light(&self, i: usize) -> u64 {
        self.light[i]
    }

    /// `C_i = A_i + a_i`.
    pub fn colour(&self, i: usize) -> u64 {
        self.dark[i] + self.light[i]
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pp_core::{init, Weights};

    #[test]
    fn balanced_matches_init_module() {
        for (n, k) in [(10u64, 4usize), (7, 3), (100, 5)] {
            let dense = CountConfig::all_dark_balanced(n, k);
            let states = init::all_dark_balanced(n as usize, &Weights::uniform(k));
            assert_eq!(dense, CountConfig::from_states(&states, k), "n={n} k={k}");
        }
    }

    #[test]
    fn single_minority_matches_init_module() {
        let dense = CountConfig::all_dark_single_minority(50, 3);
        let states = init::all_dark_single_minority(50, &Weights::uniform(3));
        assert_eq!(dense, CountConfig::from_states(&states, 3));
        assert_eq!(dense.dark(0), 48);
        assert_eq!(dense.dark(1), 1);
    }

    #[test]
    fn class_roundtrip() {
        let c = CountConfig::new(vec![3, 2], vec![1, 4]);
        let classes = c.to_classes();
        assert_eq!(classes, vec![3, 2, 1, 4]);
        assert_eq!(CountConfig::from_classes(&classes), c);
        assert_eq!(c.population(), 10);
        assert_eq!(c.colour(1), 6);
    }

    #[test]
    fn stats_roundtrip() {
        let c = CountConfig::new(vec![3, 2], vec![1, 4]);
        let stats = c.stats();
        assert_eq!(stats.dark_count(0), 3);
        assert_eq!(stats.light_count(1), 4);
        assert_eq!(CountConfig::from_stats(&stats), c);
    }

    #[test]
    #[should_panic(expected = "align")]
    fn rejects_ragged_counts() {
        CountConfig::new(vec![1, 2], vec![1]);
    }
}
