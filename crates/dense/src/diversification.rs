//! Count-level rate tables for the paper's protocols.

use crate::{Channel, CountProtocol};
use pp_core::{DerandomisedDiversification, Diversification};

/// Exact pairwise interaction rates of the Diversification protocol
/// (Eq. (2) of the paper) over the `2k` classes `(colour, shade)`.
///
/// Class layout matches `AgentState::chain_index`: dark colours `0..k`,
/// light colours `k..2k`. The channels:
///
/// * **adopt(j → i)** (`light j` observes `dark i`, becomes `dark i`):
///   per-step probability `(a_j/n)·(A_i/(n−1))`;
/// * **soften(i)** (`dark i` observes *another* `dark i`, turns light with
///   probability `1/w_i`): `(A_i/n)·((A_i−1)/(n−1))·(1/w_i)`.
///
/// The softening rate vanishes at `A_i = 1` and its batch cap is `A_i − 1`,
/// so the last dark agent of every colour is immortal under the dense
/// engine exactly as under the agent-based one.
impl CountProtocol for Diversification {
    fn channels(&self, num_classes: usize) -> Vec<Channel> {
        let k = self.num_colours();
        assert_eq!(
            num_classes,
            2 * k,
            "Diversification over k colours uses 2k classes"
        );
        let mut channels = Vec::with_capacity(k * k + k);
        for j in 0..k {
            for i in 0..k {
                channels.push(Channel { src: k + j, dst: i });
            }
        }
        for i in 0..k {
            channels.push(Channel { src: i, dst: k + i });
        }
        channels
    }

    #[allow(clippy::needless_range_loop)] // parallel-array index math
    fn rates(&self, counts: &[u64], n: u64, rates: &mut [f64]) {
        let k = self.num_colours();
        debug_assert_eq!(counts.len(), 2 * k);
        debug_assert_eq!(rates.len(), k * k + k);
        let nf = n as f64;
        let nm1 = (n - 1) as f64;
        let mut idx = 0;
        for j in 0..k {
            let light_j = counts[k + j] as f64 / nf;
            for i in 0..k {
                rates[idx] = light_j * (counts[i] as f64 / nm1);
                idx += 1;
            }
        }
        for i in 0..k {
            let dark_i = counts[i] as f64;
            rates[idx] = (dark_i / nf) * ((dark_i - 1.0).max(0.0) / nm1) / self.weights().get(i);
            idx += 1;
        }
    }

    fn batch_cap(&self, channel: usize, counts: &[u64]) -> u64 {
        let k = self.num_colours();
        if channel < k * k {
            counts[k + channel / k]
        } else {
            // Softening may never consume the last dark agent of a colour.
            counts[channel - k * k].saturating_sub(1)
        }
    }

    fn name(&self) -> String {
        "diversification".to_string()
    }
}

/// Offsets of each colour's shade block in the flat class vector.
fn grey_offsets(protocol: &DerandomisedDiversification) -> Vec<usize> {
    let mut offsets = Vec::with_capacity(protocol.num_colours() + 1);
    let mut acc = 0usize;
    for i in 0..protocol.num_colours() {
        offsets.push(acc);
        acc += protocol.weights().get(i) as usize + 1;
    }
    offsets.push(acc);
    offsets
}

/// The flat class index of `(colour i, grey shade s)` for the derandomised
/// protocol: colour blocks are laid out consecutively, shade `0` (light)
/// first, so colour `i` occupies `offset_i ..= offset_i + w_i`.
pub fn grey_class_index(
    protocol: &DerandomisedDiversification,
    colour: usize,
    shade: u32,
) -> usize {
    assert!(colour < protocol.num_colours(), "colour out of range");
    assert!(
        shade <= protocol.weights().get(colour),
        "shade {shade} above weight"
    );
    grey_offsets(protocol)[colour] + shade as usize
}

/// The balanced fully-shaded start of `init::grey_balanced`, as class
/// counts, built in `O(Σ wᵢ)` without materialising agents.
#[allow(clippy::needless_range_loop)] // parallel-array index math
pub fn grey_balanced_counts(n: u64, protocol: &DerandomisedDiversification) -> Vec<u64> {
    let k = protocol.num_colours();
    assert!(n >= k as u64, "need at least one agent per colour");
    let offsets = grey_offsets(protocol);
    let mut counts = vec![0u64; offsets[k]];
    let base = n / k as u64;
    let extra = (n % k as u64) as usize;
    for i in 0..k {
        let top = offsets[i] + protocol.weights().get(i) as usize;
        counts[top] = base + u64::from(i < extra);
    }
    counts
}

/// Exact interaction rates of the derandomised Diversification protocol
/// (§1.2) over the `Σ (wᵢ + 1)` grey-shade classes.
///
/// Channels:
///
/// * **step-down(i, s)** for `s ≥ 1` (positively-shaded agent observes
///   *another* positively-shaded agent of its colour):
///   `(G_{i,s}/n)·((P_i − 1)/(n−1))` where `P_i = Σ_{s≥1} G_{i,s}`;
/// * **adopt(j → i)** (shade-0 agent observes a positively-shaded agent of
///   colour `i`, restarts at top shade `w_i`): `(G_{j,0}/n)·(P_i/(n−1))`.
///
/// Step-downs from shade 1 are capped at `P_i − 1`, preserving the
/// derandomised analogue of sustainability (positive-shade support never
/// vanishes) under batching.
impl CountProtocol for DerandomisedDiversification {
    #[allow(clippy::needless_range_loop)] // parallel-array index math
    fn channels(&self, num_classes: usize) -> Vec<Channel> {
        let k = self.num_colours();
        let offsets = grey_offsets(self);
        assert_eq!(
            num_classes, offsets[k],
            "derandomised protocol uses sum(w_i + 1) classes"
        );
        let mut channels = Vec::new();
        for i in 0..k {
            for s in 1..=self.weights().get(i) as usize {
                channels.push(Channel {
                    src: offsets[i] + s,
                    dst: offsets[i] + s - 1,
                });
            }
        }
        for j in 0..k {
            for i in 0..k {
                channels.push(Channel {
                    src: offsets[j],
                    dst: offsets[i] + self.weights().get(i) as usize,
                });
            }
        }
        channels
    }

    #[allow(clippy::needless_range_loop)] // parallel-array index math
    fn rates(&self, counts: &[u64], n: u64, rates: &mut [f64]) {
        let k = self.num_colours();
        let offsets = grey_offsets(self);
        let nf = n as f64;
        let nm1 = (n - 1) as f64;
        let positive: Vec<f64> = (0..k)
            .map(|i| {
                (1..=self.weights().get(i) as usize)
                    .map(|s| counts[offsets[i] + s] as f64)
                    .sum()
            })
            .collect();
        let mut idx = 0;
        for i in 0..k {
            for s in 1..=self.weights().get(i) as usize {
                rates[idx] =
                    (counts[offsets[i] + s] as f64 / nf) * ((positive[i] - 1.0).max(0.0) / nm1);
                idx += 1;
            }
        }
        for j in 0..k {
            let light_j = counts[offsets[j]] as f64 / nf;
            for i in 0..k {
                rates[idx] = light_j * (positive[i] / nm1);
                idx += 1;
            }
        }
    }

    fn batch_cap(&self, channel: usize, counts: &[u64]) -> u64 {
        let k = self.num_colours();
        let offsets = grey_offsets(self);
        let mut idx = 0;
        for i in 0..k {
            for s in 1..=self.weights().get(i) as usize {
                if idx == channel {
                    let src = offsets[i] + s;
                    if s == 1 {
                        // Never extinguish a colour's positive-shade support.
                        let positive: u64 = (1..=self.weights().get(i) as usize)
                            .map(|t| counts[offsets[i] + t])
                            .sum();
                        return counts[src].min(positive.saturating_sub(1));
                    }
                    return counts[src];
                }
                idx += 1;
            }
        }
        // Adoption channels: bounded by source availability only.
        let adopt = channel - idx;
        counts[offsets[adopt / k]]
    }

    fn name(&self) -> String {
        "derandomised-diversification".to_string()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{CountConfig, DenseSimulator};
    use pp_core::{IntWeights, Weights};

    #[test]
    fn diversification_rates_sum_below_one() {
        let p = Diversification::new(Weights::new(vec![1.0, 2.0, 4.0]).unwrap());
        let counts = CountConfig::new(vec![30, 20, 10], vec![5, 15, 20]).to_classes();
        let channels = p.channels(6);
        let mut rates = vec![0.0; channels.len()];
        p.rates(&counts, 100, &mut rates);
        let total: f64 = rates.iter().sum();
        assert!(total > 0.0 && total <= 1.0, "total rate {total}");
    }

    #[test]
    fn soften_rate_vanishes_at_last_dark_agent() {
        let p = Diversification::new(Weights::uniform(2));
        let counts = CountConfig::new(vec![1, 97], vec![1, 1]).to_classes();
        let channels = p.channels(4);
        let mut rates = vec![0.0; channels.len()];
        p.rates(&counts, 100, &mut rates);
        // Soften channel for colour 0 is after the 4 adopt channels.
        assert_eq!(rates[4], 0.0);
        assert_eq!(p.batch_cap(4, &counts), 0);
        assert!(rates[5] > 0.0);
    }

    #[test]
    fn diversification_reaches_equilibrium_shares() {
        let weights = Weights::new(vec![1.0, 1.0, 2.0]).unwrap();
        let n: u64 = 100_000;
        let mut sim = DenseSimulator::new(
            Diversification::new(weights.clone()),
            CountConfig::all_dark_balanced(n, 3).to_classes(),
            11,
        );
        sim.run(40 * n);
        let stats = CountConfig::from_classes(sim.counts()).stats();
        assert_eq!(stats.population() as u64, n);
        assert!(stats.all_colours_alive());
        let err = stats.max_diversity_error(&weights);
        assert!(err < 0.02, "diversity error {err}");
        // Eq. (7): dark fraction of colour i is w_i/(1+w).
        let dark_err = stats.max_dark_equilibrium_error(&weights) / n as f64;
        assert!(dark_err < 0.02, "dark equilibrium error {dark_err}");
    }

    #[test]
    fn grey_layout_and_balanced_start() {
        let p = DerandomisedDiversification::new(IntWeights::new(vec![1, 3]).unwrap());
        assert_eq!(grey_class_index(&p, 0, 0), 0);
        assert_eq!(grey_class_index(&p, 0, 1), 1);
        assert_eq!(grey_class_index(&p, 1, 0), 2);
        assert_eq!(grey_class_index(&p, 1, 3), 5);
        let counts = grey_balanced_counts(10, &p);
        assert_eq!(counts, vec![0, 5, 0, 0, 0, 5]);
    }

    #[test]
    fn derandomised_keeps_positive_support() {
        let p = DerandomisedDiversification::new(IntWeights::new(vec![2, 2]).unwrap());
        let counts = grey_balanced_counts(50_000, &p);
        let mut sim = DenseSimulator::new(p.clone(), counts, 5);
        sim.run(2_000_000);
        let offsets = grey_offsets(&p);
        for (i, &offset) in offsets.iter().take(2).enumerate() {
            let positive: u64 = (1..=2).map(|s| sim.counts()[offset + s]).sum();
            assert!(positive >= 1, "colour {i} lost all positive shades");
        }
        let n: u64 = sim.counts().iter().sum();
        assert_eq!(n, 50_000);
    }

    #[test]
    fn derandomised_rates_sum_below_one() {
        let p = DerandomisedDiversification::new(IntWeights::new(vec![1, 3]).unwrap());
        let counts = vec![2u64, 30, 5, 10, 20, 33];
        let channels = p.channels(6);
        let mut rates = vec![0.0; channels.len()];
        p.rates(&counts, 100, &mut rates);
        let total: f64 = rates.iter().sum();
        assert!(total > 0.0 && total <= 1.0, "total rate {total}");
    }
}
