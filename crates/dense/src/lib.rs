//! **pp-dense** — the count-based batched simulation engine.
//!
//! On the complete graph a population-protocol configuration is fully
//! described by its per-class counts: for Diversification, the `k × 2`
//! matrix of (colour, shade) counts wrapped by [`CountConfig`]. The
//! scheduled agent and its observed partner are uniform draws, so each
//! time-step fires one of a fixed list of *channels* (class → class moves)
//! with a probability computable from the counts alone — the
//! [`CountProtocol`] rate table.
//!
//! [`DenseSimulator`] exploits this to advance time in *batches*
//! (τ-leaping, the standard accelerator for chemical-reaction-network and
//! mean-field simulation): each batch samples per-channel binomial firing
//! counts across τ time-steps in `O(#channels)` work, making the amortised
//! cost of a time-step `O(k²/(ε·n))` — the bigger the population, the
//! cheaper the step, which is what lets the paper's asymptotic-in-`n`
//! claims be tested at `n = 10⁸` in seconds instead of days.
//!
//! Near absorbing boundaries the engine automatically drops to exact
//! single-interaction sampling (geometric waiting times + one weighted
//! firing), and every channel carries an invariant *batch cap*, so the
//! sustainability guarantee — the last dark agent of a colour can never be
//! erased — holds exactly, not just in expectation.
//!
//! The engine's output flows into the same checkers as the agent-based
//! engine: [`CountConfig::stats`] produces the `ConfigStats` consumed by
//! `pp-core`'s diversity / fairness / sustainability checkers and `GoodSet`
//! regions.
//!
//! [`CountProtocol`] is implemented for:
//!
//! * `pp_core::Diversification` (the paper's protocol, Eq. (2));
//! * `pp_core::DerandomisedDiversification` (§1.2 grey shades);
//! * `pp_baselines::{Voter, TwoChoices, ThreeMajority, AntiVoter}`.
//!
//! # When to use which engine
//!
//! The dense engine applies **only on the complete graph** (any other
//! topology breaks the mean-field symmetry the counts rely on) and only to
//! count-level measurements. Per-agent measurements — fairness occupancy,
//! single-agent trajectories — still need `pp_engine::Simulator`.
//!
//! # Examples
//!
//! ```
//! use pp_core::{Diversification, Weights};
//! use pp_dense::{CountConfig, DenseSimulator};
//!
//! let weights = Weights::new(vec![1.0, 3.0]).unwrap();
//! let n: u64 = 10_000_000;
//! let mut sim = DenseSimulator::new(
//!     Diversification::new(weights.clone()),
//!     CountConfig::all_dark_balanced(n, 2).to_classes(),
//!     42,
//! );
//! sim.run(20 * n); // 20 parallel rounds
//! let stats = CountConfig::from_classes(sim.counts()).stats();
//! assert!(stats.all_colours_alive());
//! assert!(stats.max_diversity_error(&weights) < 0.01);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod baselines;
pub mod config;
pub mod diversification;
pub mod engine;
pub mod protocol;
pub mod sampling;
pub mod simulator;

pub use config::CountConfig;
pub use diversification::{grey_balanced_counts, grey_class_index};
pub use engine::DenseEngine;
pub use protocol::{Channel, CountProtocol};
pub use simulator::DenseSimulator;
