//! The batched count-based engine.

use crate::sampling::{binomial, geometric, pick_weighted};
use crate::{Channel, CountProtocol};
use rand::rngs::StdRng;
use rand::SeedableRng;

/// Channels with fewer spare firings than this are *critical*: they are
/// fired one event at a time with exact geometric waiting times, so
/// absorbing boundaries (the last dark agent of a colour) follow the true
/// dynamics instead of a batched approximation.
const CRITICAL_CAP: u64 = 16;

/// Leaps shorter than this are not worth the batching overhead; the engine
/// uses exact event sampling instead (which is also bias-free).
const MIN_LEAP: u64 = 8;

/// Simulates a [`CountProtocol`] on the complete graph by advancing the
/// class-count vector directly, in batches of many time-steps (τ-leaping).
///
/// Equivalent in distribution (up to the τ-leap tolerance `ε`) to running
/// `pp_engine::Simulator` on `Complete` and tallying states — but the work
/// per batch is `O(#channels)` instead of `O(τ)`, so a time-step costs
/// `O(#channels / τ) = O(k² / (ε·n))` amortised: population size makes the
/// engine *faster* per step, unlocking `n = 10⁸`.
///
/// Three mechanisms, combined automatically each batch (the standard
/// hybrid/modified τ-leap of chemical-kinetics simulation):
///
/// * **τ-leap**: every abundant ("non-critical") channel fires
///   `Binomial(τ, rate)` times, with `τ` chosen so no class's gross flow
///   exceeds a fraction `ε` of its count; firings are clamped to
///   [`CountProtocol::batch_cap`] so protocol invariants hold exactly, not
///   just in expectation.
/// * **exact critical events**: channels within `CRITICAL_CAP` firings of
///   an invariant boundary are excluded from leaping; the engine samples
///   the geometric waiting time to the next critical event and fires exactly
///   one, re-deriving rates from the updated counts each time.
/// * **exact fallback**: when even the non-critical flows demand tiny leaps,
///   the engine runs pure event-by-event sampling — the agent-based
///   dynamics' own count process, with no approximation at all.
///
/// A run is fully determined by `(protocol, initial counts, seed, ε)`.
///
/// # Examples
///
/// ```
/// use pp_core::{Diversification, Weights};
/// use pp_dense::{CountConfig, DenseSimulator};
///
/// let weights = Weights::new(vec![1.0, 1.0, 2.0]).unwrap();
/// let config = CountConfig::all_dark_balanced(1_000_000, 3);
/// let mut sim = DenseSimulator::new(
///     Diversification::new(weights.clone()),
///     config.to_classes(),
///     7,
/// );
/// sim.run(50_000_000);
/// let stats = CountConfig::from_classes(sim.counts()).stats();
/// assert!(stats.all_colours_alive());
/// assert!(stats.max_diversity_error(&weights) < 0.05);
/// ```
#[derive(Debug)]
pub struct DenseSimulator<P: CountProtocol> {
    protocol: P,
    channels: Vec<Channel>,
    counts: Vec<u64>,
    n: u64,
    step: u64,
    seed: u64,
    rng: StdRng,
    epsilon: f64,
    rates: Vec<f64>,
    mid_counts: Vec<u64>,
    mid_rates: Vec<f64>,
    critical: Vec<bool>,
    flow: Vec<f64>,
    avail: Vec<u64>,
    pending: Vec<i64>,
    leap_batches: u64,
    exact_events: u64,
}

impl<P: CountProtocol> DenseSimulator<P> {
    /// Creates a simulator at time-step 0 with the default tolerance
    /// `ε = 0.05`.
    ///
    /// # Panics
    ///
    /// Panics if the population is smaller than 2 or the channel list is
    /// malformed (`src == dst` or out-of-range classes), or if the protocol
    /// rejects the class count.
    pub fn new(protocol: P, counts: Vec<u64>, seed: u64) -> Self {
        let channels = protocol.channels(counts.len());
        let n: u64 = counts.iter().sum();
        assert!(n >= 2, "population needs at least 2 agents");
        for ch in &channels {
            assert!(
                ch.src < counts.len() && ch.dst < counts.len(),
                "channel {ch:?} out of range for {} classes",
                counts.len()
            );
            assert_ne!(ch.src, ch.dst, "channel must move between classes");
        }
        let num_channels = channels.len();
        let num_classes = counts.len();
        DenseSimulator {
            protocol,
            channels,
            counts,
            n,
            step: 0,
            seed,
            rng: StdRng::seed_from_u64(seed),
            epsilon: 0.05,
            rates: vec![0.0; num_channels],
            mid_counts: vec![0; num_classes],
            mid_rates: vec![0.0; num_channels],
            critical: vec![false; num_channels],
            flow: vec![0.0; num_classes],
            avail: vec![0; num_classes],
            pending: vec![0; num_classes],
            leap_batches: 0,
            exact_events: 0,
        }
    }

    /// Overrides the τ-leap tolerance: smaller `ε` means smaller batches and
    /// tighter agreement with the exact dynamics.
    ///
    /// # Panics
    ///
    /// Panics unless `0 < ε <= 1`.
    pub fn with_epsilon(mut self, epsilon: f64) -> Self {
        assert!(
            epsilon > 0.0 && epsilon <= 1.0,
            "epsilon must be in (0, 1], got {epsilon}"
        );
        self.epsilon = epsilon;
        self
    }

    /// Advances the clock by exactly `steps` time-steps of the agent-model
    /// schedule (each step = one scheduled agent observing one partner).
    pub fn run(&mut self, steps: u64) {
        let mut remaining = steps;
        while remaining > 0 {
            remaining -= self.advance(remaining);
        }
    }

    /// Runs until `pred(counts, step)` holds, checking every `check_every`
    /// steps (and once before the first step), for at most `max_steps`
    /// steps. Returns the step at which the predicate first held.
    ///
    /// # Panics
    ///
    /// Panics if `check_every == 0`.
    pub fn run_until(
        &mut self,
        max_steps: u64,
        check_every: u64,
        mut pred: impl FnMut(&[u64], u64) -> bool,
    ) -> Option<u64> {
        assert!(check_every > 0, "check_every must be positive");
        let deadline = self.step + max_steps;
        if pred(&self.counts, self.step) {
            return Some(self.step);
        }
        while self.step < deadline {
            let burst = check_every.min(deadline - self.step);
            self.run(burst);
            if pred(&self.counts, self.step) {
                return Some(self.step);
            }
        }
        None
    }

    /// Runs `steps` time-steps, invoking `observer(step, counts)` before the
    /// first step and after every `every`-th step.
    ///
    /// # Panics
    ///
    /// Panics if `every == 0`.
    pub fn run_observed(&mut self, steps: u64, every: u64, mut observer: impl FnMut(u64, &[u64])) {
        assert!(every > 0, "observation interval must be positive");
        observer(self.step, &self.counts);
        let deadline = self.step + steps;
        while self.step < deadline {
            let burst = every.min(deadline - self.step);
            self.run(burst);
            observer(self.step, &self.counts);
        }
    }

    /// One scheduling decision. Returns how many time-steps were consumed
    /// (at most `budget`, at least 1 when `budget > 0`).
    fn advance(&mut self, budget: u64) -> u64 {
        debug_assert!(budget > 0);
        self.protocol.rates(&self.counts, self.n, &mut self.rates);
        let mut total = 0.0;
        let mut critical_rate = 0.0;
        for c in 0..self.rates.len() {
            let r = &mut self.rates[c];
            if !r.is_finite() || *r < 0.0 {
                *r = 0.0;
            }
            total += *r;
            let crit = *r > 0.0 && {
                let src = self.channels[c].src;
                self.protocol
                    .batch_cap(c, &self.counts)
                    .min(self.counts[src])
                    < CRITICAL_CAP
            };
            self.critical[c] = crit;
            if crit {
                critical_rate += *r;
            }
        }
        if total <= 0.0 {
            // No channel can fire: the count process is frozen.
            self.step += budget;
            return budget;
        }

        let tau_leap = self.tau_estimate();
        if tau_leap < MIN_LEAP {
            // Even abundant flows demand single-digit steps: go fully exact.
            return self.exact_event(budget, total.min(1.0));
        }

        // Geometric waiting time to the next critical event (∞ if none).
        let tau_crit = if critical_rate > 0.0 {
            geometric(&mut self.rng, critical_rate.min(1.0))
        } else {
            u64::MAX
        };

        if tau_crit <= tau_leap && tau_crit <= budget {
            // Leap the abundant channels across the waiting steps, then fire
            // exactly one critical channel at step `tau_crit`.
            self.leap(tau_crit - 1);
            self.fire_critical(critical_rate);
            self.step += 1;
            tau_crit
        } else {
            let tau = tau_leap.min(budget);
            self.leap(tau);
            tau
        }
    }

    /// The τ keeping every class's expected gross *non-critical* flow below
    /// `ε · count` (empty classes may fill at up to `ε·n/(4·#classes)` per
    /// batch — products of a reaction may grow from zero freely).
    fn tau_estimate(&mut self) -> u64 {
        self.flow.fill(0.0);
        let mut any = false;
        for (c, &r) in self.rates.iter().enumerate() {
            if r > 0.0 && !self.critical[c] {
                let ch = self.channels[c];
                self.flow[ch.src] += r;
                self.flow[ch.dst] += r;
                any = true;
            }
        }
        if !any {
            return u64::MAX;
        }
        let mut tau = f64::INFINITY;
        for (class, &f) in self.flow.iter().enumerate() {
            if f > 0.0 {
                // Near-empty classes may still fill at a few agents per
                // batch (a fixed-point-free class pins ε-relative change at
                // zero otherwise); macroscopic classes are held to ε.
                let headroom = (self.counts[class] as f64).max(16.0);
                tau = tau.min(self.epsilon * headroom / f);
            }
        }
        if tau.is_finite() {
            tau.max(0.0).floor() as u64
        } else {
            u64::MAX
        }
    }

    /// Fully exact mode: geometric waiting time to the next state-changing
    /// interaction of *any* channel, then one weighted firing.
    fn exact_event(&mut self, budget: u64, total: f64) -> u64 {
        let wait = geometric(&mut self.rng, total);
        if wait > budget {
            self.step += budget;
            return budget;
        }
        let c = pick_weighted(&mut self.rng, &self.rates, total);
        self.fire_one(c);
        self.step += wait;
        self.exact_events += 1;
        pp_obs::obs_count!("dense.exact_events", 1);
        wait
    }

    /// Fires one critical channel, weighted by the critical rates.
    fn fire_critical(&mut self, critical_rate: f64) {
        debug_assert!(critical_rate > 0.0);
        let mut target = {
            use rand::RngExt;
            self.rng.random_unit() * critical_rate
        };
        let mut chosen = None;
        for (c, &r) in self.rates.iter().enumerate() {
            if self.critical[c] && r > 0.0 {
                chosen = Some(c);
                if target < r {
                    break;
                }
                target -= r;
            }
        }
        if let Some(c) = chosen {
            self.fire_one(c);
            self.exact_events += 1;
            pp_obs::obs_count!("dense.critical_fires", 1);
        }
    }

    /// Applies a single firing of channel `c`.
    fn fire_one(&mut self, c: usize) {
        let ch = self.channels[c];
        debug_assert!(self.counts[ch.src] > 0, "firing channel with empty source");
        if self.counts[ch.src] > 0 {
            self.counts[ch.src] -= 1;
            self.counts[ch.dst] += 1;
        }
    }

    /// τ-leap across `tau` steps: every non-critical channel fires
    /// `Binomial(τ, rate)` times, clamped to its invariant cap and to source
    /// availability.
    ///
    /// Uses the **midpoint** variant: firing probabilities are re-evaluated
    /// at the deterministic half-step projection of the counts, which makes
    /// the batch second-order accurate in `ε` (a plain explicit leap leaves
    /// an `O(ε)` bias in nonlinear rates — visible as a mis-placed
    /// equilibrium once `n` is large enough that sampling noise falls below
    /// `ε`-scale effects).
    fn leap(&mut self, tau: u64) {
        if tau == 0 {
            return;
        }
        // Half-step projection: counts + (τ/2)·E[Δ], clamped at zero.
        self.pending.fill(0);
        let half = tau as f64 / 2.0;
        for c in 0..self.rates.len() {
            let r = self.rates[c];
            if r <= 0.0 || self.critical[c] {
                continue;
            }
            let ch = self.channels[c];
            let expected = (half * r).round() as i64;
            self.pending[ch.src] -= expected;
            self.pending[ch.dst] += expected;
        }
        for (class, &delta) in self.pending.iter().enumerate() {
            self.mid_counts[class] = (self.counts[class] as i64 + delta).max(0) as u64;
        }
        self.protocol
            .rates(&self.mid_counts, self.n, &mut self.mid_rates);

        self.avail.copy_from_slice(&self.counts);
        self.pending.fill(0);
        for c in 0..self.rates.len() {
            if self.rates[c] <= 0.0 || self.critical[c] {
                continue;
            }
            let r = self.mid_rates[c];
            if !r.is_finite() || r <= 0.0 {
                continue;
            }
            let ch = self.channels[c];
            let cap = self
                .protocol
                .batch_cap(c, &self.counts)
                .min(self.avail[ch.src]);
            if cap == 0 {
                continue;
            }
            let draw = binomial(&mut self.rng, tau, r);
            if draw > cap {
                // Invariant-cap clamp: the τ estimate was too optimistic
                // for this channel (a bias source worth watching).
                pp_obs::obs_count!("dense.batch_cap_clamps", 1);
            }
            let m = draw.min(cap);
            self.avail[ch.src] -= m;
            self.pending[ch.src] -= m as i64;
            self.pending[ch.dst] += m as i64;
        }
        for (class, &delta) in self.pending.iter().enumerate() {
            let updated = self.counts[class] as i64 + delta;
            debug_assert!(updated >= 0, "class {class} went negative");
            self.counts[class] = updated.max(0) as u64;
        }
        self.step += tau;
        self.leap_batches += 1;
        pp_obs::obs_count!("dense.leap_batches", 1);
        pp_obs::obs_value!("dense.leap_tau", tau);
    }

    /// Number of time-steps simulated so far.
    pub fn step_count(&self) -> u64 {
        self.step
    }

    /// The seed this simulator was created with.
    pub fn seed(&self) -> u64 {
        self.seed
    }

    /// Population size `n`.
    pub fn population(&self) -> u64 {
        self.n
    }

    /// The current class counts.
    pub fn counts(&self) -> &[u64] {
        &self.counts
    }

    /// The protocol under simulation.
    pub fn protocol(&self) -> &P {
        &self.protocol
    }

    /// τ-leap batches executed so far (instrumentation).
    pub fn leap_batches(&self) -> u64 {
        self.leap_batches
    }

    /// Exact single-interaction events executed so far (instrumentation).
    pub fn exact_events(&self) -> u64 {
        self.exact_events
    }

    /// Replaces the class counts (same class universe), recomputing `n` —
    /// the mutation hook behind the [`DenseEngine`](crate::DenseEngine)
    /// adapter's structural surface (churn resets, shocks, population
    /// grow/shrink all reduce to count moves here).
    ///
    /// # Panics
    ///
    /// Panics if the class count differs from the simulator's channel
    /// universe or the new population is smaller than 2.
    pub fn set_counts(&mut self, counts: Vec<u64>) {
        assert_eq!(
            counts.len(),
            self.counts.len(),
            "class universe must not change ({} classes != {})",
            counts.len(),
            self.counts.len()
        );
        let n: u64 = counts.iter().sum();
        assert!(n >= 2, "population needs at least 2 agents");
        self.counts = counts;
        self.n = n;
    }

    /// Consumes the simulator, returning the final class counts.
    pub fn into_counts(self) -> Vec<u64> {
        self.counts
    }

    /// The τ-leap tolerance in force (a snapshot must preserve it: batch
    /// sizing, and therefore the trajectory, depends on it).
    pub fn epsilon(&self) -> f64 {
        self.epsilon
    }

    /// The sequential generator's full state, for the snapshot surface.
    pub(crate) fn rng_state(&self) -> [u64; 4] {
        self.rng.state()
    }

    /// Rewinds the complete resume state — counts, clock, seed, generator
    /// position, tolerance — to a snapshot's values. All other fields are
    /// per-batch scratch or cumulative instrumentation, recomputed or
    /// irrelevant to the trajectory. The caller (the `DenseEngine`
    /// restore path) has validated the payload.
    pub(crate) fn restore_raw(
        &mut self,
        counts: Vec<u64>,
        step: u64,
        seed: u64,
        rng_state: [u64; 4],
        epsilon: f64,
    ) {
        debug_assert_eq!(counts.len(), self.counts.len());
        self.n = counts.iter().sum();
        self.counts = counts;
        self.step = step;
        self.seed = seed;
        self.rng = StdRng::from_state(rng_state);
        self.epsilon = epsilon;
    }
}
