//! The [`Engine`] adapter over [`DenseSimulator`].
//!
//! The dense engine has no per-agent identity — its whole configuration is
//! the class-count vector. This adapter gives it the common engine
//! surface anyway, by fixing a **canonical agent ordering**: agents are
//! sorted by chain class (`AgentState::chain_index` — dark colours
//! `0..k`, then light colours `k..2k`), so "agent `u`" means "the `u`-th
//! agent in class-sorted order".
//!
//! Index-based adversarial processes stay *distributionally exact* under
//! this ordering: churn's uniformly random victim index maps to a
//! class chosen with probability proportional to its count (exactly the
//! law of resetting a uniform agent), and shock recruit sampling over the
//! canonical snapshot is a uniform distinct-agent draw. What the ordering
//! cannot provide is per-agent *trajectories* — the `u`-th agent of one
//! observation is not the `u`-th agent of the next — so fairness
//! occupancy tracking is meaningful only on the per-agent tiers (the
//! bench layer routes it there).
//!
//! Observation through the adapter keeps the dense engine's native cost:
//! [`class_counts`](pp_engine::Engine::class_counts) is an `O(k)`
//! permutation of the count vector into packed-word indexing, so generic
//! `run_until` predicates do **not** forfeit the `n = 10⁸` scaling that
//! is the engine's reason to exist.

use crate::{CountConfig, CountProtocol, DenseSimulator};
use pp_core::AgentState;
use pp_engine::{Engine, EngineSnapshot, PackedProtocol, SnapshotError};

/// [`DenseSimulator`] behind the [`Engine`] contract (complete graph,
/// shaded `AgentState` protocols).
///
/// The protocol must speak both vocabularies: [`CountProtocol`] for the
/// τ-leap core and [`PackedProtocol`] (over [`AgentState`]) for the
/// engine-surface state codec. `Diversification` does.
///
/// # Examples
///
/// ```
/// use pp_core::{Diversification, Weights};
/// use pp_dense::DenseEngine;
/// use pp_engine::Engine;
///
/// let weights = Weights::new(vec![1.0, 3.0]).unwrap();
/// let mut e = DenseEngine::all_dark_balanced(
///     Diversification::new(weights.clone()),
///     10_000,
///     2,
///     7,
/// );
/// e.run(200_000);
/// // The generic driver surface sees packed-word class counts.
/// let counts = e.class_counts();
/// assert_eq!(counts.iter().sum::<u64>(), 10_000);
/// ```
#[derive(Debug)]
pub struct DenseEngine<P: CountProtocol + PackedProtocol<State = AgentState>> {
    sim: DenseSimulator<P>,
    k: usize,
}

impl<P: CountProtocol + PackedProtocol<State = AgentState>> DenseEngine<P> {
    /// Wraps a simulator over `k` colours.
    ///
    /// # Panics
    ///
    /// Panics if the simulator's class universe is not `2k` (the shaded
    /// chain layout this adapter translates).
    pub fn new(sim: DenseSimulator<P>, k: usize) -> Self {
        assert_eq!(
            sim.counts().len(),
            2 * k,
            "dense adapter needs the 2k shaded class layout ({} classes != 2·{k})",
            sim.counts().len()
        );
        DenseEngine { sim, k }
    }

    /// Builds the balanced all-dark start in `O(k)`.
    ///
    /// # Panics
    ///
    /// Panics if `n < k` or `k == 0`.
    pub fn all_dark_balanced(protocol: P, n: u64, k: usize, seed: u64) -> Self {
        let config = CountConfig::all_dark_balanced(n, k);
        Self::new(DenseSimulator::new(protocol, config.to_classes(), seed), k)
    }

    /// Builds from explicit per-agent states (tallied in `O(n)`).
    ///
    /// # Panics
    ///
    /// Panics if any colour index is `>= k` or fewer than 2 states are
    /// given.
    pub fn from_states(protocol: P, states: &[AgentState], k: usize, seed: u64) -> Self {
        let config = CountConfig::from_states(states, k);
        Self::new(DenseSimulator::new(protocol, config.to_classes(), seed), k)
    }

    /// The wrapped simulator.
    pub fn simulator(&self) -> &DenseSimulator<P> {
        &self.sim
    }

    /// Consumes the adapter, returning the wrapped simulator.
    pub fn into_simulator(self) -> DenseSimulator<P> {
        self.sim
    }

    /// Decodes chain class `class` into an agent state.
    fn state_of_class(&self, class: usize) -> AgentState {
        let colour = pp_core::Colour::new(class % self.k);
        if class < self.k {
            AgentState::dark(colour)
        } else {
            AgentState::light(colour)
        }
    }

    /// The chain class holding canonical agent `u`, by cumulative counts.
    ///
    /// # Panics
    ///
    /// Panics if `u >= len()`.
    fn class_of_index(&self, u: usize) -> usize {
        let mut acc = 0u64;
        for (class, &c) in self.sim.counts().iter().enumerate() {
            acc += c;
            if (u as u64) < acc {
                return class;
            }
        }
        panic!(
            "agent index {u} out of range for population of {}",
            self.sim.population()
        );
    }

    /// Moves one agent between chain classes.
    fn move_agent(&mut self, from: usize, to: usize) {
        if from == to {
            return;
        }
        let mut counts = self.sim.counts().to_vec();
        assert!(counts[from] > 0, "class {from} has no agent to move");
        counts[from] -= 1;
        counts[to] += 1;
        self.sim.set_counts(counts);
    }
}

impl<P> Engine for DenseEngine<P>
where
    P: CountProtocol + PackedProtocol<State = AgentState> + Send,
{
    type State = AgentState;

    fn len(&self) -> usize {
        self.sim.population() as usize
    }

    fn step_count(&self) -> u64 {
        self.sim.step_count()
    }

    fn seed(&self) -> u64 {
        self.sim.seed()
    }

    fn run(&mut self, steps: u64) {
        self.sim.run(steps);
    }

    fn class_counts(&self) -> Vec<u64> {
        // Chain layout (dark 0..k, light k..2k) → packed-word layout
        // (colour << 1 | shade): an O(k) permutation.
        let counts = self.sim.counts();
        let mut out = vec![0u64; 2 * self.k];
        for c in 0..self.k {
            out[2 * c + 1] = counts[c];
            out[2 * c] = counts[self.k + c];
        }
        out
    }

    fn visit_states(&self, f: &mut dyn FnMut(usize, &Self::State)) {
        let mut u = 0usize;
        for (class, &count) in self.sim.counts().iter().enumerate() {
            let state = self.state_of_class(class);
            for _ in 0..count {
                f(u, &state);
                u += 1;
            }
        }
    }

    fn state(&self, u: usize) -> Self::State {
        self.state_of_class(self.class_of_index(u))
    }

    fn set_state(&mut self, u: usize, state: &Self::State) {
        let from = self.class_of_index(u);
        let to = state.chain_index(self.k);
        self.move_agent(from, to);
    }

    fn set_states(&mut self, states: &[Self::State]) {
        assert!(states.len() >= 2, "population needs at least 2 agents");
        self.sim
            .set_counts(CountConfig::from_states(states, self.k).to_classes());
    }

    fn push_agent(&mut self, state: &Self::State) {
        let mut counts = self.sim.counts().to_vec();
        counts[state.chain_index(self.k)] += 1;
        self.sim.set_counts(counts);
    }

    fn swap_remove_agent(&mut self, u: usize) {
        assert!(
            self.sim.population() > 2,
            "removal would leave fewer than 2 agents"
        );
        let class = self.class_of_index(u);
        let mut counts = self.sim.counts().to_vec();
        counts[class] -= 1;
        self.sim.set_counts(counts);
    }

    fn topology_name(&self) -> String {
        "complete".to_string()
    }

    fn supports_resize(&self) -> bool {
        true
    }

    fn save_snapshot(&mut self) -> EngineSnapshot {
        // The configuration *is* the count vector: no per-agent words.
        // aux = [classes, count_0 … count_{classes−1}, s0 s1 s2 s3, ε].
        let counts = self.sim.counts();
        let mut aux = Vec::with_capacity(counts.len() + 6);
        aux.push(counts.len() as u64);
        aux.extend_from_slice(counts);
        aux.extend_from_slice(&self.sim.rng_state());
        aux.push(self.sim.epsilon().to_bits());
        EngineSnapshot {
            engine: "dense".into(),
            protocol: PackedProtocol::name(self.sim.protocol()),
            topology: "complete".into(),
            n: self.sim.population(),
            clock: self.sim.step_count(),
            seed: self.sim.seed(),
            states: Vec::new(),
            aux,
        }
    }

    fn restore_snapshot(&mut self, snapshot: &EngineSnapshot) -> Result<(), SnapshotError> {
        snapshot.check_identity(
            "dense",
            &PackedProtocol::name(self.sim.protocol()),
            "complete",
            self.sim.population(),
        )?;
        if !snapshot.states.is_empty() {
            return Err(SnapshotError::BadPayload(format!(
                "dense tier carries no per-agent state words, got {}",
                snapshot.states.len()
            )));
        }
        let classes = self.sim.counts().len();
        if snapshot.aux.len() != classes + 6 || snapshot.aux[0] != classes as u64 {
            return Err(SnapshotError::BadPayload(format!(
                "dense tier aux must be [{classes}, counts…, rng×4, ε], got {} words",
                snapshot.aux.len()
            )));
        }
        let counts = snapshot.aux[1..1 + classes].to_vec();
        if counts.iter().sum::<u64>() != snapshot.n {
            return Err(SnapshotError::BadPayload(format!(
                "class counts sum to {}, header says {} agents",
                counts.iter().sum::<u64>(),
                snapshot.n
            )));
        }
        let rng_state: [u64; 4] = snapshot.aux[1 + classes..5 + classes].try_into().unwrap();
        if rng_state == [0, 0, 0, 0] {
            return Err(SnapshotError::BadPayload(
                "all-zero generator state is unreachable".into(),
            ));
        }
        let epsilon = f64::from_bits(snapshot.aux[5 + classes]);
        if !(epsilon > 0.0 && epsilon <= 1.0) {
            return Err(SnapshotError::BadPayload(format!(
                "τ-leap tolerance {epsilon} outside (0, 1]"
            )));
        }
        self.sim
            .restore_raw(counts, snapshot.clock, snapshot.seed, rng_state, epsilon);
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pp_core::{init, Colour, Diversification, Weights};
    use pp_engine::Simulator;
    use pp_graph::Complete;

    fn weights() -> Weights {
        Weights::new(vec![1.0, 1.0, 2.0]).unwrap()
    }

    fn engine(n: u64) -> DenseEngine<Diversification> {
        DenseEngine::all_dark_balanced(Diversification::new(weights()), n, 3, 5)
    }

    #[test]
    fn class_counts_match_reference_layout() {
        // The adapter's packed-word tally must agree with a per-agent
        // engine tallying the same configuration.
        let w = weights();
        let states = init::all_dark_single_minority(30, &w);
        let dense = DenseEngine::from_states(Diversification::new(w.clone()), &states, 3, 1);
        let reference = Simulator::new(
            Diversification::new(w),
            Complete::new(30),
            states.clone(),
            1,
        );
        assert_eq!(
            Engine::class_counts(&dense),
            Engine::class_counts(&reference)
        );
        assert_eq!(dense.snapshot().len(), 30);
    }

    #[test]
    fn canonical_ordering_roundtrips() {
        let e = engine(9);
        // 9 agents balanced over 3 dark colours: 3 per class, class-sorted.
        for u in 0..9 {
            assert_eq!(e.state(u), AgentState::dark(Colour::new(u / 3)));
        }
        let mut visited = Vec::new();
        e.visit_states(&mut |u, s| visited.push((u, *s)));
        assert_eq!(visited.len(), 9);
        assert_eq!(visited[4], (4, AgentState::dark(Colour::new(1))));
    }

    #[test]
    fn mutation_surface_moves_counts() {
        let mut e = engine(9);
        e.set_state(0, &AgentState::light(Colour::new(2)));
        assert_eq!(e.len(), 9);
        assert_eq!(e.class_counts()[2 * 2], 1, "light colour 2 gained one");
        e.push_agent(&AgentState::dark(Colour::new(1)));
        assert_eq!(e.len(), 10);
        e.swap_remove_agent(0);
        assert_eq!(e.len(), 9);
        let fresh = init::all_dark_balanced(12, &weights());
        e.set_states(&fresh);
        assert_eq!(e.len(), 12);
        assert_eq!(e.class_counts().iter().sum::<u64>(), 12);
    }

    #[test]
    fn runs_and_preserves_population_through_the_trait() {
        let mut e = engine(600);
        let hit = e.run_until(2_000_000, 300, &mut |counts, _| {
            counts.iter().sum::<u64>() == 600 && counts.iter().step_by(2).any(|&light| light > 0)
        });
        assert!(hit.is_some(), "no light agent ever appeared");
        assert_eq!(e.len(), 600);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn rejects_out_of_range_index() {
        engine(9).state(9);
    }
}
