//! Distribution samplers for the batched engine.

use rand::rngs::StdRng;
use rand::{Rng, RngExt};

/// A standard normal draw (Box–Muller).
fn standard_normal(rng: &mut StdRng) -> f64 {
    loop {
        let u1 = rng.random_unit();
        let u2 = rng.random_unit();
        if u1 > 0.0 {
            return (-2.0 * u1.ln()).sqrt() * (std::f64::consts::TAU * u2).cos();
        }
    }
}

/// A draw from `Binomial(trials, p)`.
///
/// Exact (geometric inter-success skips) when the mean is small; Gaussian
/// approximation, rounded and clamped to `[0, trials]`, when the mean is
/// large. The crossover keeps single-batch moments accurate to far below
/// the τ-leap discretisation error itself.
pub fn binomial(rng: &mut StdRng, trials: u64, p: f64) -> u64 {
    if trials == 0 || p <= 0.0 {
        return 0;
    }
    if p >= 1.0 {
        return trials;
    }
    if p > 0.5 {
        return trials - binomial(rng, trials, 1.0 - p);
    }
    let mean = trials as f64 * p;
    if mean < 64.0 {
        // Count successes by skipping geometric failure runs.
        let c = (1.0 - p).ln();
        if c >= 0.0 {
            return 0;
        }
        let mut successes = 0u64;
        let mut position = 0f64;
        loop {
            let u = rng.random_unit().max(f64::MIN_POSITIVE);
            position += (u.ln() / c).floor() + 1.0;
            if position > trials as f64 {
                return successes;
            }
            successes += 1;
        }
    }
    let sd = (trials as f64 * p * (1.0 - p)).sqrt();
    let x = (mean + sd * standard_normal(rng)).round();
    x.clamp(0.0, trials as f64) as u64
}

/// Number of time-steps until the first event, when each step fires with
/// probability `p` — a geometric draw on `{1, 2, …}`, saturating instead of
/// overflowing for vanishing `p`.
pub fn geometric(rng: &mut StdRng, p: f64) -> u64 {
    if p >= 1.0 {
        return 1;
    }
    if p <= 0.0 {
        return u64::MAX;
    }
    let u = rng.random_unit().max(f64::MIN_POSITIVE);
    let g = (u.ln() / (1.0 - p).ln()).floor() + 1.0;
    if g >= u64::MAX as f64 {
        u64::MAX
    } else {
        g as u64
    }
}

/// Picks an index with probability proportional to `weights[i]`, given
/// `total = Σ weights`. Falls back to the last positive entry under
/// floating-point shortfall.
pub fn pick_weighted(rng: &mut dyn Rng, weights: &[f64], total: f64) -> usize {
    debug_assert!(total > 0.0);
    let mut target = rng.random_unit() * total;
    let mut last_positive = 0;
    for (i, &w) in weights.iter().enumerate() {
        if w > 0.0 {
            last_positive = i;
            if target < w {
                return i;
            }
            target -= w;
        }
    }
    last_positive
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    #[test]
    fn binomial_edge_cases() {
        let mut rng = StdRng::seed_from_u64(1);
        assert_eq!(binomial(&mut rng, 0, 0.5), 0);
        assert_eq!(binomial(&mut rng, 100, 0.0), 0);
        assert_eq!(binomial(&mut rng, 100, 1.0), 100);
        for _ in 0..100 {
            assert!(binomial(&mut rng, 10, 0.3) <= 10);
        }
    }

    #[test]
    fn binomial_mean_small_regime() {
        let mut rng = StdRng::seed_from_u64(2);
        let (trials, p, reps) = (200u64, 0.05, 20_000);
        let total: u64 = (0..reps).map(|_| binomial(&mut rng, trials, p)).sum();
        let mean = total as f64 / reps as f64;
        assert!((mean - 10.0).abs() < 0.2, "mean = {mean}");
    }

    #[test]
    fn binomial_mean_large_regime() {
        let mut rng = StdRng::seed_from_u64(3);
        let (trials, p, reps) = (100_000u64, 0.4, 2_000);
        let total: u64 = (0..reps).map(|_| binomial(&mut rng, trials, p)).sum();
        let mean = total as f64 / reps as f64;
        let expect = trials as f64 * p;
        assert!(
            (mean - expect).abs() < 0.005 * expect,
            "mean = {mean}, expected {expect}"
        );
    }

    #[test]
    fn geometric_mean_is_inverse_p() {
        let mut rng = StdRng::seed_from_u64(4);
        let (p, reps) = (0.02, 50_000);
        let total: u64 = (0..reps).map(|_| geometric(&mut rng, p)).sum();
        let mean = total as f64 / reps as f64;
        assert!((mean - 50.0).abs() < 1.5, "mean = {mean}");
    }

    #[test]
    fn geometric_saturates() {
        let mut rng = StdRng::seed_from_u64(5);
        assert_eq!(geometric(&mut rng, 0.0), u64::MAX);
        assert_eq!(geometric(&mut rng, 1.0), 1);
    }

    #[test]
    fn pick_weighted_tracks_weights() {
        let mut rng = StdRng::seed_from_u64(6);
        let weights = [0.0, 1.0, 3.0];
        let mut counts = [0u32; 3];
        for _ in 0..40_000 {
            counts[pick_weighted(&mut rng, &weights, 4.0)] += 1;
        }
        assert_eq!(counts[0], 0);
        let frac1 = counts[1] as f64 / 40_000.0;
        assert!((frac1 - 0.25).abs() < 0.02, "{frac1}");
    }
}
