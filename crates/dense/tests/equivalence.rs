//! Dense-vs-agent equivalence: the count-based engine must reproduce the
//! agent-based engine's distribution on the complete graph.
//!
//! Runs both engines over independent seed ensembles and hands the
//! per-seed observables to the workspace-wide statistical-equivalence
//! harness (`pp_stats::equivalence`) — the same Bonferroni-corrected
//! chi-square / KS / moment battery that guards the turbo engine — instead
//! of the ad-hoc bootstrap-CI-overlap checks this file used to carry.
//!
//! The dense engine's τ-leaping is second-order accurate (midpoint rate
//! re-evaluation), so its per-checkpoint bias is far below the
//! seed-ensemble noise floor these tests resolve; the near-boundary
//! channels are simulated exactly, which the sustainability invariant test
//! at the bottom pins without any statistics.

use pp_core::{init, ConfigStats, Diversification, Weights};
use pp_dense::{CountConfig, DenseSimulator};
use pp_engine::{replicate, Simulator};
use pp_graph::Complete;
use pp_stats::EquivalenceSuite;

const SEEDS: u64 = 32;
const N: usize = 512;

fn weights() -> Weights {
    Weights::new(vec![1.0, 1.0, 2.0, 4.0]).unwrap()
}

/// Colour-count trajectory of one agent-based run, sampled at `checkpoints`.
fn agent_trajectory(n: usize, w: &Weights, seed: u64, checkpoints: &[u64]) -> Vec<Vec<f64>> {
    let k = w.len();
    let mut sim = Simulator::new(
        Diversification::new(w.clone()),
        Complete::new(n),
        init::all_dark_balanced(n, w),
        seed,
    );
    let mut out = Vec::with_capacity(checkpoints.len());
    let mut at = 0u64;
    for &t in checkpoints {
        sim.run(t - at);
        at = t;
        let stats = ConfigStats::from_states(sim.population().states(), k);
        out.push((0..k).map(|i| stats.colour_count(i) as f64).collect());
    }
    out
}

/// Colour-count trajectory of one dense run, sampled at `checkpoints`.
fn dense_trajectory(n: usize, w: &Weights, seed: u64, checkpoints: &[u64]) -> Vec<Vec<f64>> {
    let k = w.len();
    let mut sim = DenseSimulator::new(
        Diversification::new(w.clone()),
        CountConfig::all_dark_balanced(n as u64, k).to_classes(),
        seed,
    );
    let mut out = Vec::with_capacity(checkpoints.len());
    let mut at = 0u64;
    for &t in checkpoints {
        sim.run(t - at);
        at = t;
        let stats = CountConfig::from_classes(sim.counts()).stats();
        out.push((0..k).map(|i| stats.colour_count(i) as f64).collect());
    }
    out
}

#[test]
fn colour_trajectories_agree() {
    let w = weights();
    let k = w.len();
    let budget = pp_core::theory::convergence_budget(N, w.total(), 4.0);
    let checkpoints: Vec<u64> = [0.05, 0.15, 0.4, 1.0]
        .iter()
        .map(|f| (budget as f64 * f) as u64)
        .collect();

    let agent_runs = replicate(0..SEEDS, |s| agent_trajectory(N, &w, s, &checkpoints));
    let dense_runs = replicate(0..SEEDS, |s| {
        dense_trajectory(N, &w, 10_000 + s, &checkpoints)
    });

    let mut suite = EquivalenceSuite::new("dense-vs-agent: colour trajectories", 1e-3);
    for (t_idx, &t) in checkpoints.iter().enumerate() {
        for colour in 0..k {
            let agent: Vec<f64> = agent_runs.iter().map(|r| r[t_idx][colour]).collect();
            let dense: Vec<f64> = dense_runs.iter().map(|r| r[t_idx][colour]).collect();
            suite.check_moments(format!("C_{colour} @ step {t} (n = {N})"), &agent, &dense);
            suite.check_distribution(
                format!("C_{colour} @ step {t} (n = {N}) [KS]"),
                &agent,
                &dense,
            );
        }
    }
    suite.assert_pass();
}

#[test]
fn diversity_errors_agree() {
    let w = weights();
    let k = w.len();
    let budget = pp_core::theory::convergence_budget(N, w.total(), 4.0);
    let window = (2.0 * N as f64 * (N as f64).ln()) as u64;
    let stride = (N as u64) / 2;

    let agent_errors = replicate(0..SEEDS, |s| {
        let mut sim = Simulator::new(
            Diversification::new(w.clone()),
            Complete::new(N),
            init::all_dark_balanced(N, &w),
            s,
        );
        sim.run(budget);
        let mut worst: f64 = 0.0;
        sim.run_observed(window, stride, |_, pop| {
            let stats = ConfigStats::from_states(pop.states(), k);
            worst = worst.max(stats.max_diversity_error(&w));
        });
        worst
    });
    let dense_errors = replicate(0..SEEDS, |s| {
        let mut sim = DenseSimulator::new(
            Diversification::new(w.clone()),
            CountConfig::all_dark_balanced(N as u64, k).to_classes(),
            20_000 + s,
        );
        sim.run(budget);
        let mut worst: f64 = 0.0;
        sim.run_observed(window, stride, |_, counts| {
            let stats = CountConfig::from_classes(counts).stats();
            worst = worst.max(stats.max_diversity_error(&w));
        });
        worst
    });

    let mut suite = EquivalenceSuite::new("dense-vs-agent: diversity error", 1e-3);
    suite.check_moments(
        format!("window-max diversity error (n = {N})"),
        &agent_errors,
        &dense_errors,
    );
    suite.check_distribution(
        format!("window-max diversity error (n = {N}) [KS]"),
        &agent_errors,
        &dense_errors,
    );
    suite.assert_pass();
}

#[test]
fn dense_preserves_population_and_sustainability_over_long_runs() {
    let w = weights();
    let k = w.len();
    for seed in 0..8 {
        let mut sim = DenseSimulator::new(
            Diversification::new(w.clone()),
            CountConfig::all_dark_balanced(N as u64, k).to_classes(),
            seed,
        );
        let mut min_dark = u64::MAX;
        sim.run_observed(400_000, 1_000, |_, counts| {
            let config = CountConfig::from_classes(counts);
            assert_eq!(config.population(), N as u64, "population drifted");
            for i in 0..k {
                min_dark = min_dark.min(config.dark(i));
            }
        });
        assert!(
            min_dark >= 1,
            "seed {seed}: a colour lost its last dark agent"
        );
    }
}

#[test]
fn engines_agree_from_single_minority_start() {
    // The adversarial start exercises the dense engine's critical-channel
    // path (the singleton colour sits on the sustainability boundary);
    // spread times to n/4 are heavy-tailed, exactly what the KS test is
    // for.
    let w = Weights::uniform(2);
    let quarter = (N / 4) as f64;
    let budget = pp_core::theory::convergence_budget(N, 2.0, 64.0);

    let spread = |dense: bool, seed: u64| -> f64 {
        if dense {
            let mut sim = DenseSimulator::new(
                Diversification::new(w.clone()),
                CountConfig::all_dark_single_minority(N as u64, 2).to_classes(),
                seed,
            );
            sim.run_until(budget, (N / 4) as u64, |counts, _| {
                CountConfig::from_classes(counts).colour(1) as f64 >= quarter
            })
            .map(|t| t as f64)
            .unwrap_or(budget as f64)
        } else {
            let mut sim = Simulator::new(
                Diversification::new(w.clone()),
                Complete::new(N),
                init::all_dark_single_minority(N, &w),
                seed,
            );
            sim.run_until(budget, (N / 4) as u64, |pop, _| {
                ConfigStats::from_states(pop.states(), 2).colour_count(1) as f64 >= quarter
            })
            .map(|t| t as f64)
            .unwrap_or(budget as f64)
        }
    };

    let agent: Vec<f64> = replicate(0..SEEDS, |s| spread(false, s));
    let dense: Vec<f64> = replicate(0..SEEDS, |s| spread(true, 30_000 + s));

    let mut suite = EquivalenceSuite::new("dense-vs-agent: singleton spread", 1e-3);
    suite.check_distribution(
        format!("singleton spread time to n/4 (n = {N})"),
        &agent,
        &dense,
    );
    suite.check_moments(
        format!("singleton spread time to n/4 (n = {N})"),
        &agent,
        &dense,
    );
    suite.assert_pass();
}
