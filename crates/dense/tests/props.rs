//! Property-based tests: the dense engine never violates the invariants the
//! agent-based dynamics enforces structurally.

use pp_core::{Diversification, Weights};
use pp_dense::{CountConfig, CountProtocol, DenseSimulator};
use proptest::prelude::*;

/// Random valid weight tables of `k` colours, weights in `[1, 6)`.
fn arb_weights(k: usize) -> impl Strategy<Value = Weights> {
    prop::collection::vec(1.0f64..6.0, k..k + 1)
        .prop_map(|ws| Weights::new(ws).expect("weights >= 1"))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// The headline sustainability property: `DenseSimulator` never drives a
    /// colour's dark count from 1 to 0, whatever the weights, start, or
    /// seed — including starts that put several colours exactly on the
    /// boundary.
    #[test]
    fn never_extinguishes_last_dark_agent(
        k in 2usize..5,
        seed in 0u64..1_000,
        bulk in 50u64..2_000,
        weights in arb_weights(4),
    ) {
        let weights = Weights::new(
            (0..k).map(|i| weights.as_slice()[i % 4]).collect()
        ).unwrap();
        // Colour 0 gets the bulk; every other colour starts at the
        // sustainability boundary A_i = 1.
        let mut dark = vec![1u64; k];
        dark[0] = bulk;
        let config = CountConfig::new(dark, vec![0; k]);
        let mut sim = DenseSimulator::new(
            Diversification::new(weights),
            config.to_classes(),
            seed,
        );
        let mut min_dark = u64::MAX;
        sim.run_observed(50_000, 250, |_, counts| {
            let c = CountConfig::from_classes(counts);
            for i in 0..k {
                min_dark = min_dark.min(c.dark(i));
            }
        });
        prop_assert!(min_dark >= 1, "a colour lost its last dark agent (min {min_dark})");
    }

    /// Population is conserved exactly by every batch and event.
    #[test]
    fn population_is_conserved(
        k in 2usize..5,
        n in 100u64..5_000,
        seed in 0u64..1_000,
    ) {
        let config = CountConfig::all_dark_balanced(n, k);
        let mut sim = DenseSimulator::new(
            Diversification::new(Weights::uniform(k)),
            config.to_classes(),
            seed,
        );
        sim.run(25_000);
        prop_assert_eq!(sim.counts().iter().sum::<u64>(), n);
    }

    /// Rates are always a sub-probability vector: non-negative, summing to
    /// at most 1 (the remainder is the no-op probability of a time-step).
    #[test]
    fn rates_are_sub_probability(
        k in 2usize..5,
        seed in 0u64..500,
        weights in arb_weights(4),
    ) {
        let weights = Weights::new(
            (0..k).map(|i| weights.as_slice()[i % 4]).collect()
        ).unwrap();
        let protocol = Diversification::new(weights);
        // Sample a reachable configuration by running briefly.
        let mut sim = DenseSimulator::new(
            protocol.clone(),
            CountConfig::all_dark_balanced(1_000, k).to_classes(),
            seed,
        );
        sim.run(5_000);
        let counts = sim.counts().to_vec();
        let channels = protocol.channels(2 * k);
        let mut rates = vec![0.0; channels.len()];
        protocol.rates(&counts, 1_000, &mut rates);
        let mut total = 0.0;
        for &r in &rates {
            prop_assert!(r >= 0.0 && r.is_finite(), "bad rate {r}");
            total += r;
        }
        prop_assert!(total <= 1.0 + 1e-9, "rates sum to {total}");
    }

    /// `run` advances the step counter by exactly the requested budget, in
    /// both leap and exact regimes.
    #[test]
    fn step_accounting_is_exact(
        n in 10u64..10_000,
        steps in 1u64..200_000,
        seed in 0u64..100,
    ) {
        let mut sim = DenseSimulator::new(
            Diversification::new(Weights::uniform(2)),
            CountConfig::all_dark_balanced(n, 2).to_classes(),
            seed,
        );
        sim.run(steps);
        prop_assert_eq!(sim.step_count(), steps);
        sim.run(steps / 2 + 1);
        prop_assert_eq!(sim.step_count(), steps + steps / 2 + 1);
    }
}
