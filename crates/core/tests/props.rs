//! Property-based tests of the Diversification dynamics: the invariants the
//! paper proves must hold on every trajectory, for every seed.

use pp_core::{
    init, ConfigStats, DerandomisedDiversification, Diversification, IntWeights, Weights,
};
use pp_engine::Simulator;
use pp_graph::Complete;
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};

fn arb_weights() -> impl Strategy<Value = Weights> {
    (1usize..6, 0u64..1000).prop_map(|(k, seed)| {
        let mut rng = StdRng::seed_from_u64(seed);
        Weights::new((0..k).map(|_| rng.random_range(1.0..6.0)).collect()).unwrap()
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Sustainability (Definition 1.1(3)): on EVERY trajectory, every colour
    /// keeps at least one dark agent at every step. This is the paper's
    /// probability-1 claim, so we check it exhaustively along the run.
    #[test]
    fn sustainability_invariant(weights in arb_weights(), n_extra in 0usize..40, seed in 0u64..1000) {
        let k = weights.len();
        let n = k + 2 + n_extra;
        let states = init::all_dark_balanced(n, &weights);
        let mut sim = Simulator::new(
            Diversification::new(weights.clone()),
            Complete::new(n),
            states,
            seed,
        );
        for _ in 0..40 {
            sim.run(25);
            let stats = ConfigStats::from_states(sim.population().states(), k);
            prop_assert!(stats.all_colours_alive(), "a colour lost its last dark agent");
        }
    }

    /// The population never changes size and counts always add up to n.
    #[test]
    fn counts_conserved(weights in arb_weights(), seed in 0u64..1000) {
        let k = weights.len();
        let n = 4 * k + 8;
        let states = init::all_dark_single_minority(n, &weights);
        let mut sim = Simulator::new(
            Diversification::new(weights),
            Complete::new(n),
            states,
            seed,
        );
        sim.run(2_000);
        let stats = ConfigStats::from_states(sim.population().states(), k);
        let total: usize = (0..k).map(|i| stats.colour_count(i)).sum();
        prop_assert_eq!(total, n);
        prop_assert_eq!(stats.total_dark() + stats.total_light(), n);
    }

    /// Colours can never be invented: the support of the colour set only
    /// comes from the initial assignment.
    #[test]
    fn no_colour_invented(seed in 0u64..1000) {
        let weights = Weights::uniform(3);
        let n = 30;
        // Start with colours 0 and 1 only... but Ω requires all colours
        // supported; instead check that colour indices stay < k.
        let states = init::all_dark_balanced(n, &weights);
        let mut sim = Simulator::new(
            Diversification::new(weights),
            Complete::new(n),
            states,
            seed,
        );
        sim.run(3_000);
        prop_assert!(sim
            .population()
            .states()
            .iter()
            .all(|s| s.colour.index() < 3));
    }

    /// Derandomised protocol: shades stay within 0..=w_i and sustainability
    /// holds (the last positively-shaded agent of a colour cannot soften:
    /// stepping down requires observing another positively-shaded agent of
    /// the same colour... at shade >= 1 it can still step down to 0 only on
    /// meeting same-colour shaded agents, so the last shaded agent of a
    /// colour never softens).
    #[test]
    fn derandomised_invariants(seed in 0u64..1000, n_extra in 0usize..30) {
        let iw = IntWeights::new(vec![1, 2, 4]).unwrap();
        let protocol = DerandomisedDiversification::new(iw.clone());
        let n = 6 + n_extra;
        let states = init::grey_balanced(n, &protocol);
        let mut sim = Simulator::new(protocol.clone(), Complete::new(n), states, seed);
        for _ in 0..40 {
            sim.run(25);
            for s in sim.population().states() {
                prop_assert!(s.shade() <= iw.get(s.colour().index()));
            }
            let stats = ConfigStats::from_grey_states(sim.population().states(), 3);
            prop_assert!(stats.all_colours_alive());
        }
    }

    /// Potentials are non-negative and φ = ψ = 0 exactly at proportional
    /// configurations, on arbitrary reachable configurations.
    #[test]
    fn potentials_nonnegative_along_run(weights in arb_weights(), seed in 0u64..200) {
        let k = weights.len();
        let n = 5 * k + 5;
        let states = init::all_dark_balanced(n, &weights);
        let mut sim = Simulator::new(
            Diversification::new(weights.clone()),
            Complete::new(n),
            states,
            seed,
        );
        for _ in 0..20 {
            sim.run(50);
            let stats = ConfigStats::from_states(sim.population().states(), k);
            prop_assert!(pp_core::phi(&stats, &weights) >= 0.0);
            prop_assert!(pp_core::psi(&stats, &weights) >= 0.0);
            prop_assert!(pp_core::sigma_sq(&stats, &weights) >= 0.0);
        }
    }

    /// The closed-form potential matches the naive pairwise sum on reachable
    /// configurations (not just synthetic count vectors).
    #[test]
    fn potential_closed_form_on_trajectories(weights in arb_weights(), seed in 0u64..200) {
        let k = weights.len();
        let n = 4 * k + 10;
        let states = init::all_dark_single_minority(n, &weights);
        let mut sim = Simulator::new(
            Diversification::new(weights.clone()),
            Complete::new(n),
            states,
            seed,
        );
        sim.run(500);
        let stats = ConfigStats::from_states(sim.population().states(), k);
        let fast = pp_core::phi(&stats, &weights);
        let slow = pp_core::potential::pairwise_quadratic_naive(stats.dark_counts(), &weights);
        prop_assert!((fast - slow).abs() <= 1e-9 * (1.0 + slow));
    }
}

/// End-to-end smoke: with uniform weights the protocol approaches the
/// uniform partition (deterministic seed, generous tolerance).
#[test]
fn uniform_weights_approach_uniform_partition() {
    let k = 4;
    let weights = Weights::uniform(k);
    let n = 800;
    let states = init::all_dark_single_minority(n, &weights);
    let mut sim = Simulator::new(
        Diversification::new(weights.clone()),
        Complete::new(n),
        states,
        2024,
    );
    // Theorem 1.3 budget with a generous constant: w = 4 ⇒ w²·n·ln n ≈ 86k… use 400k.
    sim.run(400_000);
    let stats = ConfigStats::from_states(sim.population().states(), k);
    let err = stats.max_diversity_error(&weights);
    assert!(
        err < 0.08,
        "diversity error {err} too large after convergence"
    );
}

/// End-to-end smoke for weighted fair share: the heavy colour ends near its
/// larger share.
#[test]
fn weighted_fair_share_reached() {
    let weights = Weights::new(vec![1.0, 1.0, 2.0]).unwrap();
    let n = 600;
    let states = init::all_dark_balanced(n, &weights);
    let mut sim = Simulator::new(
        Diversification::new(weights.clone()),
        Complete::new(n),
        states,
        99,
    );
    sim.run(400_000);
    let stats = ConfigStats::from_states(sim.population().states(), 3);
    let heavy = stats.colour_fraction(2);
    assert!((heavy - 0.5).abs() < 0.1, "heavy share {heavy}");
}
