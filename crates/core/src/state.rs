//! Agent state: a colour plus one shade bit.

/// A colour (task/opinion) identifier, indexing into a [`Weights`] table.
///
/// A newtype rather than a bare integer so colour indices cannot be mixed up
/// with agent ids or counts.
///
/// [`Weights`]: crate::Weights
///
/// # Examples
///
/// ```
/// use pp_core::Colour;
///
/// let c = Colour::new(2);
/// assert_eq!(c.index(), 2);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Colour(u32);

impl Colour {
    /// Creates the colour with index `i`.
    pub fn new(i: usize) -> Self {
        Colour(u32::try_from(i).expect("colour index fits in u32"))
    }

    /// The colour's index into the weight table.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl From<usize> for Colour {
    fn from(i: usize) -> Self {
        Colour::new(i)
    }
}

impl std::fmt::Display for Colour {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "c{}", self.0)
    }
}

/// The extra bit of memory of the Diversification protocol.
///
/// *Dark* agents are confident and never change colour directly; *light*
/// agents adopt the colour of any dark agent they observe. A dark agent can
/// only soften to light after observing **another dark agent of its own
/// colour** — the interaction that drives over-represented colours down and
/// simultaneously guarantees sustainability.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Shade {
    /// Bit 0: open to change.
    Light,
    /// Bit 1: confident in the current colour.
    Dark,
}

impl Shade {
    /// The paper's bit encoding: dark = 1, light = 0.
    pub fn bit(self) -> u8 {
        match self {
            Shade::Light => 0,
            Shade::Dark => 1,
        }
    }
}

impl std::fmt::Display for Shade {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Shade::Light => write!(f, "light"),
            Shade::Dark => write!(f, "dark"),
        }
    }
}

/// The full state of one agent: `(c_u(t), b_u(t))` in the paper's notation.
///
/// # Examples
///
/// ```
/// use pp_core::{AgentState, Colour, Shade};
///
/// let s = AgentState::dark(Colour::new(0));
/// assert_eq!(s.shade, Shade::Dark);
/// assert!(s.is_dark());
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct AgentState {
    /// The agent's current colour.
    pub colour: Colour,
    /// The agent's confidence bit.
    pub shade: Shade,
}

impl AgentState {
    /// A dark-shaded state of the given colour.
    pub fn dark(colour: Colour) -> Self {
        AgentState {
            colour,
            shade: Shade::Dark,
        }
    }

    /// A light-shaded state of the given colour.
    pub fn light(colour: Colour) -> Self {
        AgentState {
            colour,
            shade: Shade::Light,
        }
    }

    /// Returns `true` if the shade is dark.
    pub fn is_dark(&self) -> bool {
        self.shade == Shade::Dark
    }

    /// Returns `true` if the shade is light.
    pub fn is_light(&self) -> bool {
        self.shade == Shade::Light
    }

    /// The index of this state in the `2k`-state space of §2.4, matching
    /// [`pp_markov::IdealChain`] conventions: dark colours map to `0..k`,
    /// light colours to `k..2k`.
    ///
    /// [`pp_markov::IdealChain`]: https://docs.rs/pp-markov
    pub fn chain_index(&self, k: usize) -> usize {
        let i = self.colour.index();
        assert!(i < k, "colour {i} out of range for k = {k}");
        match self.shade {
            Shade::Dark => i,
            Shade::Light => k + i,
        }
    }
}

impl std::fmt::Display for AgentState {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{} {}", self.shade, self.colour)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn colour_roundtrip() {
        let c = Colour::new(7);
        assert_eq!(c.index(), 7);
        assert_eq!(Colour::from(7usize), c);
        assert_eq!(format!("{c}"), "c7");
    }

    #[test]
    fn shade_bits_match_paper() {
        assert_eq!(Shade::Dark.bit(), 1);
        assert_eq!(Shade::Light.bit(), 0);
    }

    #[test]
    fn constructors_and_predicates() {
        let d = AgentState::dark(Colour::new(1));
        let l = AgentState::light(Colour::new(1));
        assert!(d.is_dark() && !d.is_light());
        assert!(l.is_light() && !l.is_dark());
        assert_ne!(d, l);
        assert_eq!(d.colour, l.colour);
    }

    #[test]
    fn chain_index_layout() {
        let k = 3;
        assert_eq!(AgentState::dark(Colour::new(0)).chain_index(k), 0);
        assert_eq!(AgentState::dark(Colour::new(2)).chain_index(k), 2);
        assert_eq!(AgentState::light(Colour::new(0)).chain_index(k), 3);
        assert_eq!(AgentState::light(Colour::new(2)).chain_index(k), 5);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn chain_index_checks_k() {
        AgentState::dark(Colour::new(5)).chain_index(3);
    }

    #[test]
    fn display_is_readable() {
        let s = AgentState::light(Colour::new(2));
        assert_eq!(format!("{s}"), "light c2");
    }
}
