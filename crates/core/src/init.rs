//! Initial configurations.
//!
//! The paper assumes every agent starts **dark** (`b_u(0) = 1` for all `u`)
//! and allows an arbitrary initial colour distribution as long as every
//! colour has at least one (dark) supporter — the state space `Ω` requires
//! `A_i ≥ 1`. These constructors cover the spectrum from balanced to
//! adversarially skewed starts used across the experiments.

use crate::{AgentState, Colour, DerandomisedDiversification, GreyState, Weights};

/// All agents dark, colours assigned round-robin so every colour gets
/// `⌈n/k⌉` or `⌊n/k⌋` agents — the "benign" start.
///
/// # Examples
///
/// ```
/// use pp_core::{init, ConfigStats, Weights};
///
/// let w = Weights::uniform(3);
/// let states = init::all_dark_balanced(10, &w);
/// let stats = ConfigStats::from_states(&states, 3);
/// assert_eq!(stats.total_dark(), 10);
/// assert!(stats.all_colours_alive());
/// ```
///
/// # Panics
///
/// Panics if `n < weights.len()` (some colour would start unsupported).
pub fn all_dark_balanced(n: usize, weights: &Weights) -> Vec<AgentState> {
    let k = weights.len();
    assert!(
        n >= k,
        "need at least one agent per colour: n = {n}, k = {k}"
    );
    (0..n)
        .map(|u| AgentState::dark(Colour::new(u % k)))
        .collect()
}

/// All agents dark with colour counts proportional to the weights (each
/// colour still gets at least one agent). This starts the colour totals at
/// their fair share, isolating the shade dynamics.
///
/// # Panics
///
/// Panics if `n < weights.len()`.
pub fn all_dark_proportional(n: usize, weights: &Weights) -> Vec<AgentState> {
    let k = weights.len();
    assert!(
        n >= k,
        "need at least one agent per colour: n = {n}, k = {k}"
    );
    let mut counts: Vec<usize> = (0..k)
        .map(|i| ((weights.fair_share(i) * n as f64).round() as usize).max(1))
        .collect();
    rebalance_to_n(&mut counts, n);
    from_dark_counts(&counts)
}

/// The adversarial start of Phase 1: one designated minority colour holds a
/// single agent and the remaining `n − k + 1` agents pile onto colour 0
/// (all other colours get one agent each). All dark.
///
/// This is the configuration that makes the `Ω(n log n)` broadcast lower
/// bound bite and exercises the "rise of the minorities" analysis.
///
/// # Panics
///
/// Panics if `n < weights.len()`.
pub fn all_dark_single_minority(n: usize, weights: &Weights) -> Vec<AgentState> {
    let k = weights.len();
    assert!(
        n >= k,
        "need at least one agent per colour: n = {n}, k = {k}"
    );
    let mut counts = vec![1usize; k];
    counts[0] = n - (k - 1);
    from_dark_counts(&counts)
}

/// All agents dark with explicit per-colour counts.
///
/// # Panics
///
/// Panics if any count is zero (the paper's `Ω` requires `A_i ≥ 1`).
pub fn from_dark_counts(counts: &[usize]) -> Vec<AgentState> {
    assert!(
        counts.iter().all(|&c| c >= 1),
        "every colour needs at least one dark agent (Ω requires A_i >= 1)"
    );
    let mut states = Vec::with_capacity(counts.iter().sum());
    for (i, &c) in counts.iter().enumerate() {
        states.extend(std::iter::repeat_n(AgentState::dark(Colour::new(i)), c));
    }
    states
}

/// Balanced fully-shaded start for the derandomised protocol: colours
/// round-robin, every agent at its colour's top shade `w_i`.
///
/// # Panics
///
/// Panics if `n < protocol.num_colours()`.
pub fn grey_balanced(n: usize, protocol: &DerandomisedDiversification) -> Vec<GreyState> {
    let k = protocol.num_colours();
    assert!(
        n >= k,
        "need at least one agent per colour: n = {n}, k = {k}"
    );
    (0..n).map(|u| protocol.full_shade(u % k)).collect()
}

/// Single-minority fully-shaded start for the derandomised protocol.
///
/// # Panics
///
/// Panics if `n < protocol.num_colours()`.
pub fn grey_single_minority(n: usize, protocol: &DerandomisedDiversification) -> Vec<GreyState> {
    let k = protocol.num_colours();
    assert!(
        n >= k,
        "need at least one agent per colour: n = {n}, k = {k}"
    );
    let mut states = Vec::with_capacity(n);
    states.extend(std::iter::repeat_n(protocol.full_shade(0), n - (k - 1)));
    for i in 1..k {
        states.push(protocol.full_shade(i));
    }
    states
}

/// Adjusts rounded counts so they sum to exactly `n` while keeping every
/// entry at least 1; surplus/deficit is absorbed by the largest entries.
fn rebalance_to_n(counts: &mut [usize], n: usize) {
    loop {
        let total: usize = counts.iter().sum();
        if total == n {
            return;
        }
        if total > n {
            let idx = max_index(counts);
            assert!(counts[idx] > 1, "cannot shrink counts below 1 per colour");
            counts[idx] -= 1;
        } else {
            let idx = max_index(counts);
            counts[idx] += 1;
        }
    }
}

fn max_index(counts: &[usize]) -> usize {
    counts
        .iter()
        .enumerate()
        .max_by_key(|&(_, &c)| c)
        .map(|(i, _)| i)
        .expect("non-empty counts")
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{ConfigStats, IntWeights};

    #[test]
    fn balanced_covers_all_colours() {
        let w = Weights::uniform(4);
        let states = all_dark_balanced(10, &w);
        let stats = ConfigStats::from_states(&states, 4);
        assert_eq!(stats.population(), 10);
        assert_eq!(stats.total_light(), 0);
        assert!(stats.all_colours_alive());
        // Round-robin: counts differ by at most 1.
        let counts: Vec<usize> = (0..4).map(|i| stats.colour_count(i)).collect();
        assert_eq!(
            counts.iter().max().unwrap() - counts.iter().min().unwrap(),
            1
        );
    }

    #[test]
    fn proportional_tracks_weights() {
        let w = Weights::new(vec![1.0, 3.0]).unwrap();
        let states = all_dark_proportional(100, &w);
        let stats = ConfigStats::from_states(&states, 2);
        assert_eq!(stats.population(), 100);
        assert_eq!(stats.colour_count(0), 25);
        assert_eq!(stats.colour_count(1), 75);
    }

    #[test]
    fn proportional_guarantees_support() {
        // Extreme skew: light colour must still get one agent.
        let w = Weights::new(vec![1.0, 1000.0]).unwrap();
        let states = all_dark_proportional(10, &w);
        let stats = ConfigStats::from_states(&states, 2);
        assert!(stats.all_colours_alive());
        assert_eq!(stats.population(), 10);
    }

    #[test]
    fn single_minority_shape() {
        let w = Weights::uniform(3);
        let states = all_dark_single_minority(50, &w);
        let stats = ConfigStats::from_states(&states, 3);
        assert_eq!(stats.colour_count(0), 48);
        assert_eq!(stats.colour_count(1), 1);
        assert_eq!(stats.colour_count(2), 1);
        assert!(stats.all_colours_alive());
    }

    #[test]
    fn from_dark_counts_exact() {
        let states = from_dark_counts(&[2, 3]);
        let stats = ConfigStats::from_states(&states, 2);
        assert_eq!(stats.dark_count(0), 2);
        assert_eq!(stats.dark_count(1), 3);
        assert_eq!(stats.total_light(), 0);
    }

    #[test]
    #[should_panic(expected = "A_i >= 1")]
    fn rejects_unsupported_colour() {
        from_dark_counts(&[3, 0]);
    }

    #[test]
    fn grey_starts() {
        let p = DerandomisedDiversification::new(IntWeights::new(vec![2, 3]).unwrap());
        let balanced = grey_balanced(6, &p);
        assert_eq!(balanced.len(), 6);
        assert!(balanced.iter().all(|s| !s.is_light()));
        assert_eq!(balanced[0].shade(), 2);
        assert_eq!(balanced[1].shade(), 3);

        let minority = grey_single_minority(10, &p);
        let stats = ConfigStats::from_grey_states(&minority, 2);
        assert_eq!(stats.colour_count(0), 9);
        assert_eq!(stats.colour_count(1), 1);
    }

    #[test]
    #[should_panic(expected = "at least one agent per colour")]
    fn rejects_tiny_population() {
        all_dark_balanced(2, &Weights::uniform(3));
    }
}
