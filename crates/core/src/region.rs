//! The region ladder of Phase 1 and the good sets `E(δ)`, `E'`, `Ê`.
//!
//! Phase 1 of the analysis climbs a ladder of nested configuration regions
//! `R_1 ⊆ S_1`, `R_2 ⊆ S_2 ⊆ S_3 ⊆ S_4` (parametrised by `ε ∈ (0, ¼)`),
//! each entered quickly and left only with exponentially small probability.
//! Applying the ladder with `ε = δ/(4w)` yields the multiplicative good set
//! `E(δ)` of Eq. (9), inside which the Phase-2 potential arguments operate;
//! `E'` (Eq. (14)) additionally requires `φ ≤ C·w·n`, and `Ê` requires both
//! potentials `≤ C'·w·n·log n` (Phase 3).

use crate::{phi, psi, ConfigStats, Weights};

/// Checks membership in region `R_1`: the light mass has risen to
/// `a/n ≥ (1−ε)/(w+1)`.
///
/// # Panics
///
/// Panics if `eps` is outside `(0, ¼)` or the population is empty.
pub fn in_r1(stats: &ConfigStats, weights: &Weights, eps: f64) -> bool {
    check_eps(eps);
    light_fraction(stats) >= (1.0 - eps) / (weights.total() + 1.0)
}

/// Checks membership in region `S_1` (`R_1` with slack `2ε`).
pub fn in_s1(stats: &ConfigStats, weights: &Weights, eps: f64) -> bool {
    check_eps(eps);
    light_fraction(stats) >= (1.0 - 2.0 * eps) / (weights.total() + 1.0)
}

/// Checks membership in `R_2`: every dark support has risen to
/// `A_i/n ≥ (1−3ε)·w_i/(1+w)`, and the configuration is still in `S_1`.
pub fn in_r2(stats: &ConfigStats, weights: &Weights, eps: f64) -> bool {
    in_s1(stats, weights, eps) && dark_lower_bound(stats, weights, 1.0 - 3.0 * eps)
}

/// Checks membership in `S_2` (`R_2` with slack `4ε`).
pub fn in_s2(stats: &ConfigStats, weights: &Weights, eps: f64) -> bool {
    in_s1(stats, weights, eps) && dark_lower_bound(stats, weights, 1.0 - 4.0 * eps)
}

/// Checks membership in `S_3`: additionally every dark support is bounded
/// above by `(1 + 4εw)·w_i/(1+w)` — implied by `S_2` (Lemma 2.3) but checked
/// explicitly.
pub fn in_s3(stats: &ConfigStats, weights: &Weights, eps: f64) -> bool {
    in_s2(stats, weights, eps)
        && dark_upper_bound(stats, weights, 1.0 + 4.0 * eps * weights.total())
}

/// Checks membership in `S_4`: additionally the light mass is bounded above
/// by `(1 + 4εw)/(1+w)` — implied by `S_3` (Lemma 2.4).
pub fn in_s4(stats: &ConfigStats, weights: &Weights, eps: f64) -> bool {
    in_s3(stats, weights, eps)
        && light_fraction(stats) <= (1.0 + 4.0 * eps * weights.total()) / (1.0 + weights.total())
}

fn check_eps(eps: f64) {
    assert!(
        eps > 0.0 && eps < 0.25,
        "the Phase-1 ladder requires eps in (0, 1/4), got {eps}"
    );
}

fn light_fraction(stats: &ConfigStats) -> f64 {
    assert!(stats.population() > 0, "empty population");
    stats.total_light() as f64 / stats.population() as f64
}

fn dark_lower_bound(stats: &ConfigStats, weights: &Weights, factor: f64) -> bool {
    let n = stats.population() as f64;
    (0..stats.num_colours()).all(|i| {
        stats.dark_count(i) as f64 / n >= factor * weights.get(i) / (1.0 + weights.total())
    })
}

fn dark_upper_bound(stats: &ConfigStats, weights: &Weights, factor: f64) -> bool {
    let n = stats.population() as f64;
    (0..stats.num_colours()).all(|i| {
        stats.dark_count(i) as f64 / n <= factor * weights.get(i) / (1.0 + weights.total())
    })
}

/// The multiplicative good set `E(δ)` of Eq. (9): every normalised dark
/// support `A_i/w_i` and the light total `a` lie within `(1 ± δ)·n/(1+w)`.
///
/// Theorem 2.5 shows the process enters `E(δ)` within `O(w² n log n)` steps
/// and stays for `n¹⁰` steps w.h.p.; the paper fixes `δ = 10⁻⁴` but any
/// small constant works, and experiments use looser values to keep run
/// times laptop-scale.
///
/// # Examples
///
/// ```
/// use pp_core::{region::GoodSet, ConfigStats, Weights};
///
/// let w = Weights::new(vec![1.0, 3.0])?;
/// let e = GoodSet::new(w, 0.1);
/// // Perfect equilibrium for n = 100 (Eq. (7)): A = (20, 60), a = (5, 15).
/// let stats = ConfigStats::from_counts(vec![20, 60], vec![5, 15]);
/// assert!(e.contains(&stats));
/// # Ok::<(), pp_core::WeightsError>(())
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct GoodSet {
    weights: Weights,
    delta: f64,
}

impl GoodSet {
    /// Creates `E(δ)` for the given weights.
    ///
    /// # Panics
    ///
    /// Panics if `delta` is not in `(0, 1)`.
    pub fn new(weights: Weights, delta: f64) -> Self {
        assert!(
            delta > 0.0 && delta < 1.0,
            "delta must be in (0, 1), got {delta}"
        );
        GoodSet { weights, delta }
    }

    /// The tolerance `δ`.
    pub fn delta(&self) -> f64 {
        self.delta
    }

    /// The weight table.
    pub fn weights(&self) -> &Weights {
        &self.weights
    }

    /// Returns `true` if the configuration lies in `E(δ)`.
    ///
    /// # Panics
    ///
    /// Panics if the stats and weights disagree on `k`.
    pub fn contains(&self, stats: &ConfigStats) -> bool {
        assert_eq!(
            stats.num_colours(),
            self.weights.len(),
            "weight table size mismatch"
        );
        let n = stats.population() as f64;
        let centre = n / (1.0 + self.weights.total());
        let lo = (1.0 - self.delta) * centre;
        let hi = (1.0 + self.delta) * centre;
        let darks_ok = (0..stats.num_colours()).all(|i| {
            let scaled = stats.dark_count(i) as f64 / self.weights.get(i);
            scaled >= lo && scaled <= hi
        });
        let light = stats.total_light() as f64;
        darks_ok && light >= lo && light <= hi
    }

    /// The largest relative deviation of any `E(δ)` coordinate from its
    /// centre `n/(1+w)`: membership holds iff this is `≤ δ`.
    pub fn max_relative_deviation(&self, stats: &ConfigStats) -> f64 {
        let n = stats.population() as f64;
        let centre = n / (1.0 + self.weights.total());
        let mut worst: f64 = 0.0;
        for i in 0..stats.num_colours() {
            let scaled = stats.dark_count(i) as f64 / self.weights.get(i);
            worst = worst.max((scaled / centre - 1.0).abs());
        }
        worst.max((stats.total_light() as f64 / centre - 1.0).abs())
    }

    /// Distance-to-membership diagnostic: the largest relative violation of
    /// the `E(δ)` constraints (`0` inside the set). Used by experiments to
    /// plot convergence toward the set.
    pub fn violation(&self, stats: &ConfigStats) -> f64 {
        (self.max_relative_deviation(stats) - self.delta).max(0.0)
    }
}

/// The Phase-2 good set `E'` of Eq. (14): `E(δ)` plus `φ ≤ c·w·n`.
#[derive(Debug, Clone, PartialEq)]
pub struct EPrime {
    good: GoodSet,
    c: f64,
}

impl EPrime {
    /// Creates `E'` with potential constant `c`.
    ///
    /// # Panics
    ///
    /// Panics if `c <= 0`.
    pub fn new(good: GoodSet, c: f64) -> Self {
        assert!(c > 0.0, "potential constant must be positive");
        EPrime { good, c }
    }

    /// Returns `true` if the configuration is in `E(δ)` and `φ ≤ c·w·n`.
    pub fn contains(&self, stats: &ConfigStats) -> bool {
        self.good.contains(stats)
            && phi(stats, self.good.weights())
                <= self.c * self.good.weights().total() * stats.population() as f64
    }
}

/// The Phase-3 good set `Ê`: both potentials bounded by `c·w·n·log n`.
#[derive(Debug, Clone, PartialEq)]
pub struct EHat {
    weights: Weights,
    c: f64,
}

impl EHat {
    /// Creates `Ê` with potential constant `c`.
    ///
    /// # Panics
    ///
    /// Panics if `c <= 0`.
    pub fn new(weights: Weights, c: f64) -> Self {
        assert!(c > 0.0, "potential constant must be positive");
        EHat { weights, c }
    }

    /// Returns `true` if `φ` and `ψ` are both `≤ c·w·n·ln n`.
    ///
    /// # Panics
    ///
    /// Panics if the population has fewer than 2 agents.
    pub fn contains(&self, stats: &ConfigStats) -> bool {
        let n = stats.population();
        assert!(n >= 2, "population too small");
        let bound = self.c * self.weights.total() * n as f64 * (n as f64).ln();
        phi(stats, &self.weights) <= bound && psi(stats, &self.weights) <= bound
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn w2() -> Weights {
        Weights::new(vec![1.0, 3.0]).unwrap()
    }

    /// Perfect equilibrium for n = 100 and weights (1, 3).
    fn equilibrium() -> ConfigStats {
        ConfigStats::from_counts(vec![20, 60], vec![5, 15])
    }

    /// Fully dark, heavily skewed start.
    fn worst_start() -> ConfigStats {
        ConfigStats::from_counts(vec![99, 1], vec![0, 0])
    }

    #[test]
    fn equilibrium_sits_in_every_region() {
        let w = w2();
        let s = equilibrium();
        let eps = 0.1;
        assert!(in_r1(&s, &w, eps));
        assert!(in_s1(&s, &w, eps));
        assert!(in_r2(&s, &w, eps));
        assert!(in_s2(&s, &w, eps));
        assert!(in_s3(&s, &w, eps));
        assert!(in_s4(&s, &w, eps));
    }

    #[test]
    fn worst_start_fails_r1() {
        assert!(!in_r1(&worst_start(), &w2(), 0.1));
        assert!(!in_s1(&worst_start(), &w2(), 0.1));
    }

    #[test]
    fn regions_are_nested() {
        // R_j ⊆ S_j and S_2 ⊇ R_2: check with a configuration in the gap.
        let w = w2();
        let eps = 0.1;
        // n = 100; a/n = 0.17 sits below (1-ε)/(w+1) = 0.18 but above
        // (1-2ε)/(w+1) = 0.16.
        let gap = ConfigStats::from_counts(vec![20, 63], vec![4, 13]);
        assert!(!in_r1(&gap, &w, eps));
        assert!(in_s1(&gap, &w, eps));
    }

    #[test]
    fn good_set_accepts_equilibrium_rejects_skew() {
        let e = GoodSet::new(w2(), 0.1);
        assert!(e.contains(&equilibrium()));
        assert!(!e.contains(&worst_start()));
        assert_eq!(e.delta(), 0.1);
    }

    #[test]
    fn violation_is_zero_inside_positive_outside() {
        let e = GoodSet::new(w2(), 0.1);
        assert_eq!(e.violation(&equilibrium()), 0.0);
        assert!(e.violation(&worst_start()) > 0.0);
    }

    #[test]
    fn violation_decreases_toward_set() {
        let e = GoodSet::new(w2(), 0.05);
        let far = ConfigStats::from_counts(vec![80, 10], vec![5, 5]);
        let near = ConfigStats::from_counts(vec![22, 58], vec![6, 14]);
        assert!(e.violation(&near) < e.violation(&far));
    }

    #[test]
    fn eprime_requires_small_phi() {
        let w = w2();
        let good = GoodSet::new(w.clone(), 0.2);
        let ep = EPrime::new(good, 0.001);
        // Equilibrium has φ = 0 and is in E(δ).
        assert!(ep.contains(&equilibrium()));
        // In E(δ) but with φ just over the bound: widen one dark count.
        let lopsided = ConfigStats::from_counts(vec![23, 57], vec![5, 15]);
        let val = phi(&lopsided, &w);
        assert!(val > 0.001 * w.total() * 100.0, "phi = {val}");
        assert!(!ep.contains(&lopsided));
    }

    #[test]
    fn ehat_bounds_both_potentials() {
        let w = w2();
        let eh = EHat::new(w.clone(), 10.0);
        assert!(eh.contains(&equilibrium()));
        assert!(!eh.contains(&worst_start()));
    }

    #[test]
    #[should_panic(expected = "eps in (0, 1/4)")]
    fn rejects_large_eps() {
        in_r1(&equilibrium(), &w2(), 0.3);
    }

    #[test]
    #[should_panic(expected = "delta must be in (0, 1)")]
    fn rejects_bad_delta() {
        GoodSet::new(w2(), 1.5);
    }
}
