//! Validated colour-weight tables.

use std::fmt;

/// Error returned when a weight table violates the paper's preconditions.
#[derive(Debug, Clone, PartialEq)]
pub enum WeightsError {
    /// The table was empty.
    Empty,
    /// A weight was below 1 or non-finite (the paper requires `w_i ≥ 1`).
    InvalidWeight {
        /// Index of the offending colour.
        colour: usize,
        /// The rejected value.
        value: f64,
    },
}

impl fmt::Display for WeightsError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            WeightsError::Empty => write!(f, "weight table must contain at least one colour"),
            WeightsError::InvalidWeight { colour, value } => write!(
                f,
                "weight of colour {colour} must be finite and >= 1, got {value}"
            ),
        }
    }
}

impl std::error::Error for WeightsError {}

/// The colour weights `w_1, …, w_k` of the randomised protocol.
///
/// The paper requires every weight to be a real number `≥ 1`; `w` denotes
/// their sum and `w_i·n/w` is colour `i`'s **fair share** of the population.
///
/// # Examples
///
/// ```
/// use pp_core::Weights;
///
/// let w = Weights::new(vec![1.0, 3.0])?;
/// assert_eq!(w.len(), 2);
/// assert_eq!(w.total(), 4.0);
/// assert_eq!(w.fair_share(1), 0.75);
/// # Ok::<(), pp_core::WeightsError>(())
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct Weights {
    values: Vec<f64>,
    inverses: Vec<f64>,
    /// `⌊2³² / w_i⌋` per colour: the integer soften threshold the turbo
    /// transition compares 32 uniform bits against — a `Bernoulli(1/w_i)`
    /// draw with bias below `2⁻³²`, precomputed here so the hot path is
    /// one load and one integer compare (no float conversion).
    inverse_bits: Vec<u64>,
    total: f64,
}

impl Weights {
    /// Validates and wraps a weight table.
    ///
    /// # Errors
    ///
    /// Returns [`WeightsError::Empty`] for an empty table and
    /// [`WeightsError::InvalidWeight`] if any weight is non-finite or `< 1`.
    pub fn new(values: Vec<f64>) -> Result<Self, WeightsError> {
        if values.is_empty() {
            return Err(WeightsError::Empty);
        }
        for (colour, &value) in values.iter().enumerate() {
            if !value.is_finite() || value < 1.0 {
                return Err(WeightsError::InvalidWeight { colour, value });
            }
        }
        let total = values.iter().sum();
        let inverses: Vec<f64> = values.iter().map(|w| 1.0 / w).collect();
        let inverse_bits = inverses
            .iter()
            .map(|&p| (p * 4_294_967_296.0) as u64)
            .collect();
        Ok(Weights {
            values,
            inverses,
            inverse_bits,
            total,
        })
    }

    /// The uniform table of `k` unit weights — the paper's *uniform
    /// partition* special case.
    ///
    /// # Panics
    ///
    /// Panics if `k == 0`.
    pub fn uniform(k: usize) -> Self {
        Weights::new(vec![1.0; k]).expect("k >= 1 unit weights are always valid")
    }

    /// Number of colours `k`.
    pub fn len(&self) -> usize {
        self.values.len()
    }

    /// Returns `true` if the table is empty (never true for constructed tables).
    pub fn is_empty(&self) -> bool {
        self.values.is_empty()
    }

    /// Weight `w_i`.
    ///
    /// # Panics
    ///
    /// Panics if `i >= len()`.
    pub fn get(&self, i: usize) -> f64 {
        self.values[i]
    }

    /// `1 / w_i`, precomputed at construction — the softening probability
    /// of rule 2, looked up once per dark–dark interaction on the hot path
    /// instead of re-dividing.
    ///
    /// # Panics
    ///
    /// Panics if `i >= len()`.
    #[inline]
    pub fn inverse(&self, i: usize) -> f64 {
        self.inverses[i]
    }

    /// The integer soften threshold `⌊2³²/w_i⌋` (see the field docs);
    /// `uniform_32_bits < inverse_bits(i)` is a `Bernoulli(1/w_i)` draw.
    ///
    /// # Panics
    ///
    /// Panics if `i >= len()`.
    #[inline]
    pub fn inverse_bits(&self, i: usize) -> u64 {
        self.inverse_bits[i]
    }

    /// The full soften-threshold table (`inverse_bits(i)` for every
    /// state `i`), for callers that index it in a hot loop and want to
    /// hoist the borrow out.
    #[inline]
    pub fn inverse_bits_table(&self) -> &[u64] {
        &self.inverse_bits
    }

    /// The total weight `w = Σ w_i`.
    pub fn total(&self) -> f64 {
        self.total
    }

    /// Colour `i`'s fair share of the population, `w_i / w ∈ (0, 1]`.
    ///
    /// # Panics
    ///
    /// Panics if `i >= len()`.
    pub fn fair_share(&self, i: usize) -> f64 {
        self.values[i] / self.total
    }

    /// The equilibrium **dark** fraction of colour `i`, `w_i / (1 + w)`
    /// (Eq. (7) of the paper).
    pub fn equilibrium_dark_fraction(&self, i: usize) -> f64 {
        self.values[i] / (1.0 + self.total)
    }

    /// The equilibrium **light** fraction of colour `i`,
    /// `(w_i/w) / (1 + w)` (Eq. (7) of the paper).
    pub fn equilibrium_light_fraction(&self, i: usize) -> f64 {
        (self.values[i] / self.total) / (1.0 + self.total)
    }

    /// All weights as a slice.
    pub fn as_slice(&self) -> &[f64] {
        &self.values
    }

    /// Iterator over `(colour_index, weight)`.
    pub fn iter(&self) -> impl Iterator<Item = (usize, f64)> + '_ {
        self.values.iter().copied().enumerate()
    }
}

/// Integer colour weights for the derandomised protocol, which requires
/// `w_i ∈ ℕ, ≥ 1` and gives colour `i` the grey shades `0..=w_i`.
///
/// # Examples
///
/// ```
/// use pp_core::IntWeights;
///
/// let w = IntWeights::new(vec![1, 3])?;
/// assert_eq!(w.total(), 4);
/// assert_eq!(w.get(1), 3);
/// // Integer weights lift to the real-valued table of the randomised protocol.
/// let real = w.to_weights();
/// assert_eq!(real.total(), 4.0);
/// # Ok::<(), pp_core::WeightsError>(())
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct IntWeights {
    values: Vec<u32>,
    total: u64,
}

impl IntWeights {
    /// Validates and wraps an integer weight table.
    ///
    /// # Errors
    ///
    /// Returns [`WeightsError::Empty`] for an empty table and
    /// [`WeightsError::InvalidWeight`] if any weight is zero.
    pub fn new(values: Vec<u32>) -> Result<Self, WeightsError> {
        if values.is_empty() {
            return Err(WeightsError::Empty);
        }
        for (colour, &value) in values.iter().enumerate() {
            if value == 0 {
                return Err(WeightsError::InvalidWeight { colour, value: 0.0 });
            }
        }
        let total = values.iter().map(|&v| v as u64).sum();
        Ok(IntWeights { values, total })
    }

    /// Number of colours `k`.
    pub fn len(&self) -> usize {
        self.values.len()
    }

    /// Returns `true` if the table is empty (never true for constructed tables).
    pub fn is_empty(&self) -> bool {
        self.values.is_empty()
    }

    /// Weight `w_i`.
    ///
    /// # Panics
    ///
    /// Panics if `i >= len()`.
    pub fn get(&self, i: usize) -> u32 {
        self.values[i]
    }

    /// The total weight `w = Σ w_i`.
    pub fn total(&self) -> u64 {
        self.total
    }

    /// The equivalent real-valued weight table.
    pub fn to_weights(&self) -> Weights {
        Weights::new(self.values.iter().map(|&v| v as f64).collect())
            .expect("positive integer weights are valid real weights")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn accepts_valid_weights() {
        let w = Weights::new(vec![1.0, 2.5, 4.0]).unwrap();
        assert_eq!(w.len(), 3);
        assert_eq!(w.total(), 7.5);
        assert_eq!(w.get(1), 2.5);
        assert!((w.fair_share(2) - 4.0 / 7.5).abs() < 1e-12);
    }

    #[test]
    fn rejects_empty() {
        assert_eq!(Weights::new(vec![]), Err(WeightsError::Empty));
        assert_eq!(IntWeights::new(vec![]), Err(WeightsError::Empty));
    }

    #[test]
    fn rejects_sub_unit_weight() {
        let err = Weights::new(vec![1.0, 0.5]).unwrap_err();
        assert_eq!(
            err,
            WeightsError::InvalidWeight {
                colour: 1,
                value: 0.5
            }
        );
        assert!(format!("{err}").contains("colour 1"));
    }

    #[test]
    fn rejects_nan() {
        assert!(Weights::new(vec![f64::NAN]).is_err());
        assert!(Weights::new(vec![f64::INFINITY]).is_err());
    }

    #[test]
    fn uniform_weights() {
        let w = Weights::uniform(4);
        assert_eq!(w.total(), 4.0);
        for i in 0..4 {
            assert_eq!(w.fair_share(i), 0.25);
        }
    }

    #[test]
    fn equilibrium_fractions_sum_to_one() {
        // Σ_i [w_i/(1+w) + (w_i/w)/(1+w)] = w/(1+w) + 1/(1+w) = 1.
        let w = Weights::new(vec![1.0, 2.0, 3.5]).unwrap();
        let total: f64 = (0..w.len())
            .map(|i| w.equilibrium_dark_fraction(i) + w.equilibrium_light_fraction(i))
            .sum();
        assert!((total - 1.0).abs() < 1e-12);
    }

    #[test]
    fn fair_shares_sum_to_one() {
        let w = Weights::new(vec![1.0, 1.5, 9.0]).unwrap();
        let s: f64 = (0..w.len()).map(|i| w.fair_share(i)).sum();
        assert!((s - 1.0).abs() < 1e-12);
    }

    #[test]
    fn int_weights_roundtrip() {
        let iw = IntWeights::new(vec![2, 3]).unwrap();
        assert_eq!(iw.total(), 5);
        assert_eq!(iw.get(0), 2);
        let w = iw.to_weights();
        assert_eq!(w.as_slice(), &[2.0, 3.0]);
    }

    #[test]
    fn int_weights_reject_zero() {
        assert!(IntWeights::new(vec![1, 0]).is_err());
    }

    #[test]
    fn iter_yields_pairs() {
        let w = Weights::new(vec![1.0, 2.0]).unwrap();
        let pairs: Vec<(usize, f64)> = w.iter().collect();
        assert_eq!(pairs, vec![(0, 1.0), (1, 2.0)]);
    }
}
