//! The randomised Diversification protocol (Eq. (2) of the paper).

use crate::{AgentState, Shade, Weights};
use pp_engine::Protocol;
use rand::{Rng, RngExt};

/// The Diversification protocol: one extra shade bit per agent, pairwise
/// observations, and the transition rule of Eq. (2).
///
/// When the scheduled agent `u` observes agent `v`:
///
/// | `u`    | `v`    | outcome |
/// |--------|--------|---------|
/// | light  | dark   | `u` ← `(colour(v), dark)` |
/// | dark `i` | dark `i` (same colour) | `u` ← `(i, light)` with prob. `1/w_i` |
/// | anything else | | no change |
///
/// The second rule is the protocol's only source of downward pressure: it
/// fires at rate `≈ A_i²/(w_i n²)`, so heavier colours soften more slowly
/// and equilibrate at proportionally larger supports (`C_i ≈ w_i n / w`).
/// Because softening requires observing **another** dark agent of the same
/// colour, the last dark agent of a colour can never change — this is the
/// sustainability guarantee, enforced by the dynamics rather than by any
/// checker.
///
/// # Examples
///
/// ```
/// use pp_core::{init, Diversification, Weights};
/// use pp_engine::Simulator;
/// use pp_graph::Complete;
///
/// let weights = Weights::uniform(4);
/// let states = init::all_dark_balanced(100, &weights);
/// let mut sim = Simulator::new(
///     Diversification::new(weights),
///     Complete::new(100),
///     states,
///     1,
/// );
/// sim.run(10_000);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct Diversification {
    weights: Weights,
}

impl Diversification {
    /// Creates the protocol for the given weight table.
    pub fn new(weights: Weights) -> Self {
        Diversification { weights }
    }

    /// The weight table.
    pub fn weights(&self) -> &Weights {
        &self.weights
    }

    /// Number of colours `k`.
    pub fn num_colours(&self) -> usize {
        self.weights.len()
    }
}

impl Protocol for Diversification {
    type State = AgentState;

    fn transition(
        &self,
        me: &AgentState,
        observed: &[&AgentState],
        rng: &mut dyn Rng,
    ) -> AgentState {
        let v = observed[0];
        match (me.shade, v.shade) {
            // Rule 1: light adopts an observed dark colour (and darkens).
            (Shade::Light, Shade::Dark) => AgentState::dark(v.colour),
            // Rule 2: two dark agents of the same colour ⇒ soften w.p. 1/w_i.
            (Shade::Dark, Shade::Dark) if me.colour == v.colour => {
                if rng.random_bool(self.weights.inverse(me.colour.index())) {
                    AgentState::light(me.colour)
                } else {
                    *me
                }
            }
            // Rule 3: every other interaction is a no-op.
            _ => *me,
        }
    }

    fn name(&self) -> String {
        "diversification".to_string()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Colour;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn protocol(weights: Vec<f64>) -> Diversification {
        Diversification::new(Weights::new(weights).unwrap())
    }

    fn rng() -> StdRng {
        StdRng::seed_from_u64(12345)
    }

    #[test]
    fn light_adopts_dark() {
        let p = protocol(vec![1.0, 1.0]);
        let me = AgentState::light(Colour::new(0));
        let v = AgentState::dark(Colour::new(1));
        let out = p.transition(&me, &[&v], &mut rng());
        assert_eq!(out, AgentState::dark(Colour::new(1)));
    }

    #[test]
    fn light_ignores_light() {
        let p = protocol(vec![1.0, 1.0]);
        let me = AgentState::light(Colour::new(0));
        let v = AgentState::light(Colour::new(1));
        assert_eq!(p.transition(&me, &[&v], &mut rng()), me);
    }

    #[test]
    fn dark_ignores_light() {
        let p = protocol(vec![1.0, 1.0]);
        let me = AgentState::dark(Colour::new(0));
        let v = AgentState::light(Colour::new(1));
        assert_eq!(p.transition(&me, &[&v], &mut rng()), me);
    }

    #[test]
    fn dark_ignores_different_dark() {
        let p = protocol(vec![1.0, 1.0]);
        let me = AgentState::dark(Colour::new(0));
        let v = AgentState::dark(Colour::new(1));
        assert_eq!(p.transition(&me, &[&v], &mut rng()), me);
    }

    #[test]
    fn unit_weight_always_softens() {
        // w_i = 1 ⇒ softening probability 1: deterministic uniform partition.
        let p = protocol(vec![1.0, 1.0]);
        let me = AgentState::dark(Colour::new(0));
        let v = AgentState::dark(Colour::new(0));
        let mut r = rng();
        for _ in 0..50 {
            assert_eq!(
                p.transition(&me, &[&v], &mut r),
                AgentState::light(Colour::new(0))
            );
        }
    }

    #[test]
    fn softening_rate_tracks_inverse_weight() {
        let p = protocol(vec![4.0]);
        let me = AgentState::dark(Colour::new(0));
        let v = AgentState::dark(Colour::new(0));
        let mut r = rng();
        let trials = 100_000;
        let softened = (0..trials)
            .filter(|_| p.transition(&me, &[&v], &mut r).is_light())
            .count();
        let rate = softened as f64 / trials as f64;
        assert!((rate - 0.25).abs() < 0.01, "rate = {rate}");
    }

    #[test]
    fn colour_never_changes_without_adoption() {
        // A dark agent's colour can only be kept (or shade flipped) — never
        // replaced. This is the local form of sustainability.
        let p = protocol(vec![2.0, 3.0]);
        let me = AgentState::dark(Colour::new(1));
        let mut r = rng();
        for v in [
            AgentState::dark(Colour::new(0)),
            AgentState::dark(Colour::new(1)),
            AgentState::light(Colour::new(0)),
            AgentState::light(Colour::new(1)),
        ] {
            for _ in 0..20 {
                let out = p.transition(&me, &[&v], &mut r);
                assert_eq!(out.colour, me.colour, "observed {v}");
            }
        }
    }

    #[test]
    fn accessors() {
        let p = protocol(vec![1.0, 2.0]);
        assert_eq!(p.num_colours(), 2);
        assert_eq!(p.weights().total(), 3.0);
        assert_eq!(p.name(), "diversification");
        assert_eq!(Protocol::observations(&p), 1);
    }
}
