//! Closed-form scales from the paper's theorems, used as baselines by the
//! experiment harness (measured quantities are divided by these scales; the
//! theorems predict the ratios stay bounded).

/// The convergence budget of Theorem 1.3: `c · w² · n · ln n` time-steps.
///
/// # Examples
///
/// ```
/// use pp_core::theory::convergence_budget;
///
/// let steps = convergence_budget(1024, 4.0, 2.0);
/// assert!(steps > 0);
/// ```
///
/// # Panics
///
/// Panics if `n < 2`, `w < 1`, or `c <= 0`.
pub fn convergence_budget(n: usize, total_weight: f64, c: f64) -> u64 {
    assert!(n >= 2, "n must be at least 2");
    assert!(total_weight >= 1.0, "total weight must be >= 1");
    assert!(c > 0.0, "constant must be positive");
    let nf = n as f64;
    (c * total_weight * total_weight * nf * nf.ln()).ceil() as u64
}

/// The diversity error scale of Eq. (1): `sqrt(ln n / n)`, the `Õ(1/√n)`
/// width the colour fractions concentrate to.
///
/// # Panics
///
/// Panics if `n < 2`.
pub fn diversity_error_scale(n: usize) -> f64 {
    assert!(n >= 2, "n must be at least 2");
    let nf = n as f64;
    (nf.ln() / nf).sqrt()
}

/// The Phase-3 additive error scale of Theorem 2.13:
/// `n^{3/4} · (ln n)^{1/4}`.
///
/// # Panics
///
/// Panics if `n < 2`.
pub fn phase3_error_scale(n: usize) -> f64 {
    assert!(n >= 2, "n must be at least 2");
    let nf = n as f64;
    nf.powf(0.75) * nf.ln().powf(0.25)
}

/// The equilibrium potential scale of Theorem 2.8: `w · n · ln n`, the level
/// both `φ` and `ψ` decay to and stay below.
///
/// # Panics
///
/// Panics if `n < 2` or `total_weight < 1`.
pub fn potential_equilibrium_scale(n: usize, total_weight: f64) -> f64 {
    assert!(n >= 2, "n must be at least 2");
    assert!(total_weight >= 1.0, "total weight must be >= 1");
    let nf = n as f64;
    total_weight * nf * nf.ln()
}

/// The Phase-2 halving scale of Lemmas 2.6/2.9: the potentials halve every
/// `O(w · n)` steps.
///
/// # Panics
///
/// Panics if `n < 2` or `total_weight < 1`.
pub fn phase2_halving_scale(n: usize, total_weight: f64) -> f64 {
    assert!(n >= 2, "n must be at least 2");
    assert!(total_weight >= 1.0, "total weight must be >= 1");
    total_weight * n as f64
}

/// The broadcast lower bound of §1: spreading a colour held by one agent to
/// `Θ(n)` agents takes `Ω(n log n)` time-steps — the scale the protocol's
/// convergence is optimal against (for constant `w`).
///
/// # Panics
///
/// Panics if `n < 2`.
pub fn broadcast_lower_bound(n: usize) -> f64 {
    assert!(n >= 2, "n must be at least 2");
    let nf = n as f64;
    nf * nf.ln()
}

/// The Markov-chain approximation error of §2.4:
/// `err = (log n / n)^{1/4}`, the per-transition deviation between the real
/// agent trajectory and the ideal chain `P` (Eq. (20)).
///
/// # Panics
///
/// Panics if `n < 2`.
pub fn mc_approximation_error(n: usize) -> f64 {
    assert!(n >= 2, "n must be at least 2");
    let nf = n as f64;
    (nf.ln() / nf).powf(0.25)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn budget_grows_superlinearly() {
        let a = convergence_budget(1_000, 4.0, 1.0);
        let b = convergence_budget(2_000, 4.0, 1.0);
        assert!(b > 2 * a);
    }

    #[test]
    fn budget_quadratic_in_w() {
        let a = convergence_budget(1_000, 2.0, 1.0);
        let b = convergence_budget(1_000, 4.0, 1.0);
        assert!((b as f64 / a as f64 - 4.0).abs() < 0.01);
    }

    #[test]
    fn diversity_scale_shrinks() {
        assert!(diversity_error_scale(10_000) < diversity_error_scale(100));
        // Θ(sqrt(log n / n)): at n = 10⁴, about sqrt(9.2/10⁴) ≈ 0.03.
        assert!((diversity_error_scale(10_000) - 0.0303).abs() < 0.01);
    }

    #[test]
    fn phase3_scale_sublinear() {
        // n^{3/4} log^{1/4} n grows but is o(n).
        let r1 = phase3_error_scale(1_000) / 1_000.0;
        let r2 = phase3_error_scale(100_000) / 100_000.0;
        assert!(r2 < r1);
        assert!(phase3_error_scale(100_000) > phase3_error_scale(1_000));
    }

    #[test]
    fn halving_and_equilibrium_scales() {
        assert!(potential_equilibrium_scale(1_000, 4.0) > phase2_halving_scale(1_000, 4.0));
        assert_eq!(phase2_halving_scale(100, 3.0), 300.0);
    }

    #[test]
    fn broadcast_bound_matches_n_log_n() {
        assert!((broadcast_lower_bound(100) - 100.0 * 100f64.ln()).abs() < 1e-9);
    }

    #[test]
    fn mc_error_vanishes() {
        assert!(mc_approximation_error(1_000_000) < mc_approximation_error(100));
        assert!(mc_approximation_error(100) < 1.0);
    }

    #[test]
    #[should_panic(expected = "at least 2")]
    fn rejects_tiny_n() {
        diversity_error_scale(1);
    }
}
