//! The **Diversification** population protocol of
//! *Diversity, Fairness, and Sustainability in Population Protocols*
//! (Kang, Mallmann-Trenn, Rivera; PODC 2021, arXiv:2105.09926).
//!
//! `n` agents each hold one of `k` colours with weights `w_i ≥ 1`
//! (`w = Σ w_i`), plus one extra bit of memory — the **shade**: *dark*
//! (confident) or *light* (open to change). When a scheduled agent `u`
//! observes a random agent `v` (Eq. (2) of the paper):
//!
//! 1. `u` light, `v` dark  → `u` adopts `v`'s colour, becomes dark;
//! 2. `u` dark, `v` dark, same colour `i` → `u` turns light w.p. `1/w_i`;
//! 3. otherwise → no change.
//!
//! The protocol is **good**: *diverse* (each colour's support concentrates
//! on its fair share `w_i·n/w` within `O(w² n log n)` steps, Theorems 1.3 &
//! 2.8), *fair* (each agent holds colour `i` a `w_i/w` fraction of time,
//! Theorem 2.12), and *sustainable* (no colour ever vanishes — rule 2 needs
//! **two** dark agents of a colour before one can soften, so the last dark
//! agent of each colour is immortal).
//!
//! Crate layout, mirroring the paper:
//!
//! * [`Colour`], [`Shade`], [`AgentState`] — the two-field agent state;
//! * [`Weights`] / [`IntWeights`] — validated weight tables;
//! * [`Diversification`] — the randomised protocol of Eq. (2);
//! * [`packed`] — the `colour << 1 | shade` `u32` encoding that runs the
//!   protocol on `pp_engine`'s monomorphized fast path;
//! * [`DerandomisedDiversification`] — the `⌈log₂(1+w_i)⌉`-bit grey-shade
//!   variant from §1.2 (analysing it is the paper's open problem);
//! * [`ConfigStats`] — the counts `C_i(t)`, `A_i(t)`, `a_i(t)` of §2;
//! * [`potential`] — the Lyapunov functions `φ`, `ψ` (Eqs. (10)–(11)) and
//!   `σ²` of Phase 3;
//! * [`drift`] — exact one-step conditional drifts of the potentials, the
//!   quantities Lemmas 2.9/2.10/4.1 bound;
//! * [`region`] — the nested region ladder `R_j ⊆ S_j` of Phase 1 and the
//!   good sets `E(δ)` (Eq. (9)), `E'` (Eq. (14)), `Ê`;
//! * [`checker`] — executable versions of Definition 1.1 (diversity,
//!   fairness, sustainability);
//! * [`init`] — initial configurations (all-dark, as the paper assumes);
//! * [`theory`] — closed-form bounds used as experiment baselines.
//!
//! # Examples
//!
//! ```
//! use pp_core::{init, ConfigStats, Diversification, Weights};
//! use pp_engine::Simulator;
//! use pp_graph::Complete;
//!
//! // Three tasks: foraging is 2× as important as brood care or nest repair.
//! let weights = Weights::new(vec![1.0, 1.0, 2.0])?;
//! let n = 400;
//! let states = init::all_dark_balanced(n, &weights);
//! let protocol = Diversification::new(weights.clone());
//! let mut sim = Simulator::new(protocol, Complete::new(n), states, 7);
//! sim.run(200_000);
//!
//! let stats = ConfigStats::from_states(sim.population().states(), weights.len());
//! // Colour 2 (weight 2) should hold about half the population.
//! let share = stats.colour_count(2) as f64 / n as f64;
//! assert!((share - 0.5).abs() < 0.15, "share = {share}");
//! # Ok::<(), pp_core::WeightsError>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod checker;
pub mod config;
pub mod derandomised;
pub mod drift;
pub mod init;
pub mod packed;
pub mod potential;
pub mod protocol;
pub mod region;
pub mod state;
pub mod theory;
pub mod weights;

pub use checker::{DiversityChecker, FairnessTracker, SustainabilityChecker};
pub use config::ConfigStats;
pub use derandomised::{DerandomisedDiversification, GreyState};
pub use potential::{phi, psi, sigma_sq};
pub use protocol::Diversification;
pub use region::GoodSet;
pub use state::{AgentState, Colour, Shade};
pub use weights::{IntWeights, Weights, WeightsError};
