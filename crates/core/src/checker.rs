//! Executable versions of Definition 1.1: diversity, fairness,
//! sustainability.
//!
//! Each checker turns one clause of the paper's "good protocol" definition
//! into a measurement that experiments and tests can assert on. The checkers
//! only observe; the properties themselves are enforced (or not) by the
//! protocol dynamics.

use crate::{AgentState, ConfigStats, Weights};

/// Diversity (Definition 1.1(1)): after convergence, every colour fraction
/// stays within `c·sqrt(ln n / n)` of its fair share `w_i/w`.
///
/// The checker records the worst deviation it has seen, so a single call to
/// [`worst_error`](DiversityChecker::worst_error) at the end of a window
/// certifies the whole window (matching the theorem's "for all `t` in the
/// interval" form).
///
/// # Examples
///
/// ```
/// use pp_core::{ConfigStats, DiversityChecker, Weights};
///
/// let w = Weights::new(vec![1.0, 3.0])?;
/// let mut checker = DiversityChecker::new(w, 4.0);
/// let stats = ConfigStats::from_counts(vec![20, 60], vec![5, 15]);
/// checker.observe(&stats);
/// assert!(checker.holds());
/// # Ok::<(), pp_core::WeightsError>(())
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct DiversityChecker {
    weights: Weights,
    tolerance_factor: f64,
    worst_error: f64,
    worst_scale: f64,
    observations: u64,
}

impl DiversityChecker {
    /// Creates a checker with tolerance `c` (the error bound is
    /// `c·sqrt(ln n / n)`).
    ///
    /// # Panics
    ///
    /// Panics if `tolerance_factor <= 0`.
    pub fn new(weights: Weights, tolerance_factor: f64) -> Self {
        assert!(tolerance_factor > 0.0, "tolerance factor must be positive");
        DiversityChecker {
            weights,
            tolerance_factor,
            worst_error: 0.0,
            worst_scale: f64::INFINITY,
            observations: 0,
        }
    }

    /// Records one configuration snapshot.
    pub fn observe(&mut self, stats: &ConfigStats) {
        let err = stats.max_diversity_error(&self.weights);
        self.worst_error = self.worst_error.max(err);
        self.worst_scale = self
            .worst_scale
            .min(crate::theory::diversity_error_scale(stats.population()));
        self.observations += 1;
    }

    /// The largest diversity error seen so far.
    pub fn worst_error(&self) -> f64 {
        self.worst_error
    }

    /// Number of snapshots observed.
    pub fn observations(&self) -> u64 {
        self.observations
    }

    /// Returns `true` if every observed snapshot satisfied the bound.
    ///
    /// # Panics
    ///
    /// Panics if nothing has been observed.
    pub fn holds(&self) -> bool {
        assert!(self.observations > 0, "no snapshots observed");
        self.worst_error <= self.tolerance_factor * self.worst_scale
    }
}

/// Fairness (Definition 1.1(2)): over a long window, each agent holds each
/// colour a `(1 ± o(1))·w_i/w` fraction of the time.
///
/// Tracks the exact per-agent × per-colour occupancy counts. For population
/// size `n` and `k` colours this is `n·k` counters updated in `O(n)` per
/// recorded snapshot; experiments record every `stride` steps, which
/// estimates the same fractions.
///
/// # Examples
///
/// ```
/// use pp_core::{init, FairnessTracker, Weights};
///
/// let w = Weights::uniform(2);
/// let states = init::all_dark_balanced(4, &w);
/// let mut tracker = FairnessTracker::new(4, 2);
/// tracker.record(&states);
/// // Agent 0 started with colour 0, so its occupancy of colour 0 is 1.
/// assert_eq!(tracker.occupancy(0, 0), 1.0);
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FairnessTracker {
    n: usize,
    k: usize,
    counts: Vec<u64>,
    snapshots: u64,
}

impl FairnessTracker {
    /// Creates a tracker for `n` agents and `k` colours.
    ///
    /// # Panics
    ///
    /// Panics if `n == 0` or `k == 0`.
    pub fn new(n: usize, k: usize) -> Self {
        assert!(n > 0 && k > 0, "tracker needs agents and colours");
        FairnessTracker {
            n,
            k,
            counts: vec![0; n * k],
            snapshots: 0,
        }
    }

    /// Records one snapshot of all agent states.
    ///
    /// # Panics
    ///
    /// Panics if `states.len() != n` or any colour is out of range.
    pub fn record(&mut self, states: &[AgentState]) {
        assert_eq!(states.len(), self.n, "population size changed");
        for (u, s) in states.iter().enumerate() {
            let i = s.colour.index();
            assert!(i < self.k, "colour {i} out of range");
            self.counts[u * self.k + i] += 1;
        }
        self.snapshots += 1;
    }

    /// Records one snapshot streamed from any [`Engine`](pp_engine::Engine)
    /// over [`AgentState`] — the fairness hook of the adversary fast path
    /// (no per-record allocation; the engine visits its state array in
    /// place).
    ///
    /// Meaningful only on engines with stable per-agent identity: the
    /// count-based dense engine synthesizes a class-sorted ordering whose
    /// "agent `u`" changes meaning between snapshots.
    ///
    /// # Panics
    ///
    /// Panics if the engine's population size is not `n` or any colour is
    /// out of range.
    pub fn record_engine(&mut self, engine: &dyn pp_engine::Engine<State = AgentState>) {
        assert_eq!(engine.len(), self.n, "population size changed");
        let k = self.k;
        let counts = &mut self.counts;
        engine.visit_states(&mut |u, s| {
            let i = s.colour.index();
            assert!(i < k, "colour {i} out of range");
            counts[u * k + i] += 1;
        });
        self.snapshots += 1;
    }

    /// Number of snapshots recorded.
    pub fn snapshots(&self) -> u64 {
        self.snapshots
    }

    /// Fraction of recorded time agent `u` held colour `i`.
    ///
    /// # Panics
    ///
    /// Panics if nothing has been recorded or indices are out of range.
    pub fn occupancy(&self, u: usize, i: usize) -> f64 {
        assert!(self.snapshots > 0, "no snapshots recorded");
        assert!(u < self.n && i < self.k, "index out of range");
        self.counts[u * self.k + i] as f64 / self.snapshots as f64
    }

    /// The fairness deviation: `max_{u,i} |occupancy(u, i) − w_i/w|`.
    ///
    /// # Panics
    ///
    /// Panics if `weights.len() != k` or nothing has been recorded.
    pub fn max_deviation(&self, weights: &Weights) -> f64 {
        assert_eq!(weights.len(), self.k, "weight table size mismatch");
        assert!(self.snapshots > 0, "no snapshots recorded");
        let mut worst: f64 = 0.0;
        for u in 0..self.n {
            for i in 0..self.k {
                worst = worst.max((self.occupancy(u, i) - weights.fair_share(i)).abs());
            }
        }
        worst
    }

    /// Mean over agents of the per-agent worst deviation — a less
    /// adversarial summary than [`max_deviation`](Self::max_deviation).
    pub fn mean_deviation(&self, weights: &Weights) -> f64 {
        assert_eq!(weights.len(), self.k, "weight table size mismatch");
        assert!(self.snapshots > 0, "no snapshots recorded");
        let mut total = 0.0;
        for u in 0..self.n {
            let worst = (0..self.k)
                .map(|i| (self.occupancy(u, i) - weights.fair_share(i)).abs())
                .fold(0.0, f64::max);
            total += worst;
        }
        total / self.n as f64
    }
}

/// Sustainability (Definition 1.1(3)): no colour ever vanishes.
///
/// The protocol guarantees the stronger invariant that every colour keeps at
/// least one **dark** agent; the checker verifies it at every observation
/// and remembers any violation with its step number.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SustainabilityChecker {
    min_dark_seen: usize,
    first_violation: Option<u64>,
    observations: u64,
}

impl SustainabilityChecker {
    /// Creates a fresh checker.
    pub fn new() -> Self {
        SustainabilityChecker {
            min_dark_seen: usize::MAX,
            first_violation: None,
            observations: 0,
        }
    }

    /// Records one configuration; `step` labels a violation if one occurs.
    pub fn observe(&mut self, stats: &ConfigStats, step: u64) {
        self.min_dark_seen = self.min_dark_seen.min(stats.min_dark_count());
        if !stats.all_colours_alive() && self.first_violation.is_none() {
            self.first_violation = Some(step);
        }
        self.observations += 1;
    }

    /// Returns `true` if every observed configuration kept all colours alive.
    pub fn holds(&self) -> bool {
        self.first_violation.is_none()
    }

    /// The smallest per-colour dark support ever observed.
    pub fn min_dark_seen(&self) -> usize {
        self.min_dark_seen
    }

    /// The step of the first violation, if any.
    pub fn first_violation(&self) -> Option<u64> {
        self.first_violation
    }

    /// Number of snapshots observed.
    pub fn observations(&self) -> u64 {
        self.observations
    }
}

impl Default for SustainabilityChecker {
    fn default() -> Self {
        Self::new()
    }
}

/// Records the `2k`-state trajectory of a single agent (dark colours
/// `0..k`, light colours `k..2k`), for comparison against the ideal chain
/// of §2.4.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TrajectoryRecorder {
    agent: usize,
    k: usize,
    states: Vec<usize>,
}

impl TrajectoryRecorder {
    /// Creates a recorder for `agent` in a `k`-colour system.
    pub fn new(agent: usize, k: usize) -> Self {
        assert!(k > 0, "need at least one colour");
        TrajectoryRecorder {
            agent,
            k,
            states: Vec::new(),
        }
    }

    /// Appends the agent's current chain state.
    ///
    /// # Panics
    ///
    /// Panics if the agent id is out of range.
    pub fn record(&mut self, states: &[AgentState]) {
        assert!(self.agent < states.len(), "agent id out of range");
        self.states.push(states[self.agent].chain_index(self.k));
    }

    /// The recorded chain-state sequence (feed into
    /// `pp_markov::Walk::from_states`).
    pub fn states(&self) -> &[usize] {
        &self.states
    }

    /// Consumes the recorder, returning the sequence.
    pub fn into_states(self) -> Vec<usize> {
        self.states
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Colour;

    fn eq_stats() -> ConfigStats {
        ConfigStats::from_counts(vec![20, 60], vec![5, 15])
    }

    #[test]
    fn diversity_checker_accepts_equilibrium() {
        let w = Weights::new(vec![1.0, 3.0]).unwrap();
        let mut c = DiversityChecker::new(w, 4.0);
        c.observe(&eq_stats());
        assert!(c.holds());
        assert_eq!(c.observations(), 1);
        assert_eq!(c.worst_error(), 0.0);
    }

    #[test]
    fn diversity_checker_rejects_persistent_skew() {
        let w = Weights::uniform(2);
        let mut c = DiversityChecker::new(w, 1.0);
        let skew = ConfigStats::from_counts(vec![90, 10], vec![0, 0]);
        c.observe(&skew);
        assert!(!c.holds());
        assert!(c.worst_error() > 0.3);
    }

    #[test]
    fn diversity_checker_remembers_worst() {
        let w = Weights::uniform(2);
        let mut c = DiversityChecker::new(w, 1.0);
        c.observe(&ConfigStats::from_counts(vec![50, 50], vec![0, 0]));
        c.observe(&ConfigStats::from_counts(vec![80, 20], vec![0, 0]));
        c.observe(&ConfigStats::from_counts(vec![50, 50], vec![0, 0]));
        assert!((c.worst_error() - 0.3).abs() < 1e-12);
    }

    #[test]
    fn fairness_tracker_counts() {
        let mut t = FairnessTracker::new(2, 2);
        let s0 = vec![
            AgentState::dark(Colour::new(0)),
            AgentState::dark(Colour::new(1)),
        ];
        let s1 = vec![
            AgentState::dark(Colour::new(1)),
            AgentState::dark(Colour::new(1)),
        ];
        t.record(&s0);
        t.record(&s1);
        assert_eq!(t.snapshots(), 2);
        assert_eq!(t.occupancy(0, 0), 0.5);
        assert_eq!(t.occupancy(0, 1), 0.5);
        assert_eq!(t.occupancy(1, 1), 1.0);
    }

    #[test]
    fn fairness_deviation_zero_for_fair_trace() {
        let w = Weights::uniform(2);
        let mut t = FairnessTracker::new(1, 2);
        t.record(&[AgentState::dark(Colour::new(0))]);
        t.record(&[AgentState::dark(Colour::new(1))]);
        assert!(t.max_deviation(&w) < 1e-12);
        assert!(t.mean_deviation(&w) < 1e-12);
    }

    #[test]
    fn fairness_deviation_one_sided_trace() {
        let w = Weights::uniform(2);
        let mut t = FairnessTracker::new(1, 2);
        for _ in 0..10 {
            t.record(&[AgentState::dark(Colour::new(0))]);
        }
        assert!((t.max_deviation(&w) - 0.5).abs() < 1e-12);
    }

    #[test]
    fn sustainability_checker_tracks_violations() {
        let mut c = SustainabilityChecker::new();
        c.observe(&eq_stats(), 10);
        assert!(c.holds());
        assert_eq!(c.min_dark_seen(), 20);
        let dead = ConfigStats::from_counts(vec![0, 100], vec![0, 0]);
        c.observe(&dead, 20);
        assert!(!c.holds());
        assert_eq!(c.first_violation(), Some(20));
        assert_eq!(c.min_dark_seen(), 0);
        assert_eq!(c.observations(), 2);
    }

    #[test]
    fn trajectory_recorder_maps_states() {
        let mut r = TrajectoryRecorder::new(1, 2);
        r.record(&[
            AgentState::dark(Colour::new(0)),
            AgentState::light(Colour::new(1)),
        ]);
        r.record(&[
            AgentState::dark(Colour::new(0)),
            AgentState::dark(Colour::new(1)),
        ]);
        assert_eq!(r.states(), &[3, 1]);
        assert_eq!(r.into_states(), vec![3, 1]);
    }

    #[test]
    #[should_panic(expected = "no snapshots")]
    fn diversity_holds_requires_observation() {
        let c = DiversityChecker::new(Weights::uniform(2), 1.0);
        c.holds();
    }
}
