//! The Lyapunov potentials of the paper's Phase-2 and Phase-3 analysis.
//!
//! * `φ(t) = Σ_i Σ_j (A_i/w_i − A_j/w_j)²` (Eq. (10)) — imbalance of the
//!   **dark** supports relative to the weights;
//! * `ψ(t) = Σ_i Σ_j (a_i/w_i − a_j/w_j)²` (Eq. (11)) — the same for the
//!   **light** supports;
//! * `σ²(t) = (A/w − a)²` — the Phase-3 potential coupling the dark/light
//!   totals.
//!
//! Lemmas 2.6 and 2.7 show `φ` then `ψ` decay to `O(w·n·log n)` and stay
//! there for `n⁸` steps; Lemma 2.14 does the same for `σ²` at scale
//! `n^{3/2}·√log n`. The experiments track all three over time.

use crate::{ConfigStats, Weights};

/// The dark-support potential `φ` of Eq. (10).
///
/// Computed via the algebraic identity
/// `Σ_{i,j} (q_i − q_j)² = 2k·Σ q_i² − 2(Σ q_i)²` with `q_i = A_i/w_i`,
/// which is `O(k)` instead of `O(k²)` (the tests cross-check the pair sum).
///
/// # Examples
///
/// ```
/// use pp_core::{phi, ConfigStats, Weights};
///
/// let w = Weights::new(vec![1.0, 2.0])?;
/// // Perfectly weight-proportional dark counts ⇒ φ = 0.
/// let balanced = ConfigStats::from_counts(vec![10, 20], vec![0, 0]);
/// assert_eq!(phi(&balanced, &w), 0.0);
/// # Ok::<(), pp_core::WeightsError>(())
/// ```
///
/// # Panics
///
/// Panics if `weights.len() != stats.num_colours()`.
pub fn phi(stats: &ConfigStats, weights: &Weights) -> f64 {
    pairwise_quadratic(stats.dark_counts(), weights)
}

/// The light-support potential `ψ` of Eq. (11).
///
/// # Panics
///
/// Panics if `weights.len() != stats.num_colours()`.
pub fn psi(stats: &ConfigStats, weights: &Weights) -> f64 {
    pairwise_quadratic(stats.light_counts(), weights)
}

/// The Phase-3 potential `σ²(t) = (A/w − a)²` of Lemma 2.14, which pins the
/// split between dark and light mass once `φ` and `ψ` are small.
///
/// # Panics
///
/// Panics if `weights.len() != stats.num_colours()`.
pub fn sigma_sq(stats: &ConfigStats, weights: &Weights) -> f64 {
    assert_eq!(
        weights.len(),
        stats.num_colours(),
        "weight table size mismatch"
    );
    let sigma = stats.total_dark() as f64 / weights.total() - stats.total_light() as f64;
    sigma * sigma
}

/// Shared kernel of `φ`/`ψ`: `Σ_{i,j} (x_i/w_i − x_j/w_j)²` via the
/// `2k·Q₂ − 2·Q₁²` identity.
fn pairwise_quadratic(counts: &[usize], weights: &Weights) -> f64 {
    assert_eq!(weights.len(), counts.len(), "weight table size mismatch");
    let k = counts.len() as f64;
    let mut q1 = 0.0;
    let mut q2 = 0.0;
    for (i, &c) in counts.iter().enumerate() {
        let q = c as f64 / weights.get(i);
        q1 += q;
        q2 += q * q;
    }
    // Clamp tiny negative round-off: the quantity is a sum of squares.
    (2.0 * k * q2 - 2.0 * q1 * q1).max(0.0)
}

/// Reference `O(k²)` implementation of the pairwise sum, used by tests and
/// available for validation.
pub fn pairwise_quadratic_naive(counts: &[usize], weights: &Weights) -> f64 {
    assert_eq!(weights.len(), counts.len(), "weight table size mismatch");
    let q: Vec<f64> = counts
        .iter()
        .enumerate()
        .map(|(i, &c)| c as f64 / weights.get(i))
        .collect();
    let mut total = 0.0;
    for a in &q {
        for b in &q {
            total += (a - b) * (a - b);
        }
    }
    total
}

#[cfg(test)]
mod tests {
    use super::*;

    fn w3() -> Weights {
        Weights::new(vec![1.0, 2.0, 4.0]).unwrap()
    }

    #[test]
    fn phi_zero_iff_proportional() {
        let w = w3();
        let balanced = ConfigStats::from_counts(vec![5, 10, 20], vec![0, 0, 0]);
        assert_eq!(phi(&balanced, &w), 0.0);
        let skewed = ConfigStats::from_counts(vec![20, 10, 5], vec![0, 0, 0]);
        assert!(phi(&skewed, &w) > 0.0);
    }

    #[test]
    fn psi_uses_light_counts() {
        let w = w3();
        let s = ConfigStats::from_counts(vec![99, 0, 0], vec![2, 4, 8]);
        assert_eq!(psi(&s, &w), 0.0);
        assert!(phi(&s, &w) > 0.0);
    }

    #[test]
    fn closed_form_matches_naive() {
        let w = Weights::new(vec![1.0, 3.0, 2.0, 5.0]).unwrap();
        let counts = [7usize, 1, 9, 4];
        let fast = pairwise_quadratic(&counts, &w);
        let slow = pairwise_quadratic_naive(&counts, &w);
        assert!((fast - slow).abs() < 1e-9 * (1.0 + slow));
    }

    #[test]
    fn phi_known_value() {
        // counts (2, 0), weights (1, 1): pairs (0,1) and (1,0) each give 4.
        let w = Weights::uniform(2);
        let s = ConfigStats::from_counts(vec![2, 0], vec![0, 0]);
        assert!((phi(&s, &w) - 8.0).abs() < 1e-12);
    }

    #[test]
    fn sigma_sq_zero_at_equilibrium_ratio() {
        // A/w = a ⇔ σ = 0. With w_total = 3: A = 9, a = 3.
        let w = Weights::new(vec![1.0, 2.0]).unwrap();
        let s = ConfigStats::from_counts(vec![3, 6], vec![1, 2]);
        assert_eq!(sigma_sq(&s, &w), 0.0);
    }

    #[test]
    fn sigma_sq_positive_off_ratio() {
        let w = Weights::new(vec![1.0, 2.0]).unwrap();
        let s = ConfigStats::from_counts(vec![9, 0], vec![0, 0]);
        // σ = 9/3 − 0 = 3 ⇒ σ² = 9.
        assert!((sigma_sq(&s, &w) - 9.0).abs() < 1e-12);
    }

    #[test]
    fn potentials_nonnegative() {
        let w = w3();
        for counts in [[0, 0, 50], [17, 3, 30], [50, 0, 0]] {
            let s = ConfigStats::from_counts(counts.to_vec(), counts.to_vec());
            assert!(phi(&s, &w) >= 0.0);
            assert!(psi(&s, &w) >= 0.0);
            assert!(sigma_sq(&s, &w) >= 0.0);
        }
    }

    #[test]
    #[should_panic(expected = "size mismatch")]
    fn phi_rejects_mismatch() {
        let w = Weights::uniform(2);
        let s = ConfigStats::from_counts(vec![1, 2, 3], vec![0, 0, 0]);
        phi(&s, &w);
    }
}
