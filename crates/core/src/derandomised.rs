//! The derandomised Diversification protocol (§1.2 of the paper).
//!
//! Instead of flipping a `1/w_i` coin, each colour `i` carries `1 + w_i`
//! **grey shades** enumerated `0` (light) to `w_i` (dark). A shaded agent
//! meeting a same-colour agent of positive shade steps its shade down by
//! one; an agent at shade 0 adopts the colour of any positively-shaded agent
//! it observes, restarting at that colour's top shade. Analysing this
//! variant is listed as an open problem; experiment `t8_derandomised`
//! studies it empirically.

use crate::{Colour, IntWeights};
use pp_engine::Protocol;
use rand::Rng;

/// State of one agent under the derandomised protocol: a colour plus a grey
/// shade in `0..=w_i`.
///
/// # Examples
///
/// ```
/// use pp_core::{Colour, GreyState};
///
/// let s = GreyState::new(Colour::new(1), 3);
/// assert_eq!(s.shade(), 3);
/// assert!(!s.is_light());
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct GreyState {
    colour: Colour,
    shade: u32,
}

impl GreyState {
    /// Creates a state with the given colour and shade level.
    pub fn new(colour: Colour, shade: u32) -> Self {
        GreyState { colour, shade }
    }

    /// The agent's colour.
    pub fn colour(&self) -> Colour {
        self.colour
    }

    /// The grey level: `0` is light, `w_i` is fully dark.
    pub fn shade(&self) -> u32 {
        self.shade
    }

    /// Returns `true` if the shade is 0 (the only state that can change colour).
    pub fn is_light(&self) -> bool {
        self.shade == 0
    }
}

impl std::fmt::Display for GreyState {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}@{}", self.colour, self.shade)
    }
}

/// The derandomised Diversification protocol over integer weights.
///
/// Transition rule for scheduled agent `u` observing `v` (§1.2):
///
/// * `shade(u) > 0`, same colour, `shade(v) > 0` → `u` decrements its shade;
/// * `shade(u) == 0`, `shade(v) > 0` → `u` adopts `v`'s colour `j` at shade
///   `w_j`;
/// * otherwise → no change.
///
/// The expected number of same-colour meetings needed to soften from full
/// shade is exactly `w_i`, matching the `1/w_i` coin of the randomised rule
/// in expectation while using `⌈log₂(1 + w_i)⌉` bits of memory and **no**
/// randomness in the transition itself.
///
/// # Examples
///
/// ```
/// use pp_core::{DerandomisedDiversification, IntWeights};
///
/// let p = DerandomisedDiversification::new(IntWeights::new(vec![1, 3])?);
/// assert_eq!(p.num_colours(), 2);
/// # Ok::<(), pp_core::WeightsError>(())
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DerandomisedDiversification {
    weights: IntWeights,
}

impl DerandomisedDiversification {
    /// Creates the protocol for the given integer weight table.
    pub fn new(weights: IntWeights) -> Self {
        DerandomisedDiversification { weights }
    }

    /// The integer weight table.
    pub fn weights(&self) -> &IntWeights {
        &self.weights
    }

    /// Number of colours `k`.
    pub fn num_colours(&self) -> usize {
        self.weights.len()
    }

    /// The fully-dark state of colour `i` (shade `w_i`), the canonical
    /// starting state.
    ///
    /// # Panics
    ///
    /// Panics if `i` is not a valid colour.
    pub fn full_shade(&self, i: usize) -> GreyState {
        GreyState::new(Colour::new(i), self.weights.get(i))
    }
}

impl Protocol for DerandomisedDiversification {
    type State = GreyState;

    fn transition(&self, me: &GreyState, observed: &[&GreyState], _rng: &mut dyn Rng) -> GreyState {
        let v = observed[0];
        if me.shade > 0 {
            // Same colour, both positively shaded: step down one grey level.
            if v.shade > 0 && me.colour == v.colour {
                GreyState::new(me.colour, me.shade - 1)
            } else {
                *me
            }
        } else if v.shade > 0 {
            // Light agent adopts the observed colour at its top shade.
            GreyState::new(v.colour, self.weights.get(v.colour.index()))
        } else {
            *me
        }
    }

    fn name(&self) -> String {
        "derandomised-diversification".to_string()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn protocol(weights: Vec<u32>) -> DerandomisedDiversification {
        DerandomisedDiversification::new(IntWeights::new(weights).unwrap())
    }

    fn rng() -> StdRng {
        StdRng::seed_from_u64(9)
    }

    #[test]
    fn shaded_same_colour_steps_down() {
        let p = protocol(vec![3, 2]);
        let me = GreyState::new(Colour::new(0), 3);
        let v = GreyState::new(Colour::new(0), 1);
        assert_eq!(
            p.transition(&me, &[&v], &mut rng()),
            GreyState::new(Colour::new(0), 2)
        );
    }

    #[test]
    fn shaded_ignores_other_colours_and_light() {
        let p = protocol(vec![3, 2]);
        let me = GreyState::new(Colour::new(0), 2);
        let other = GreyState::new(Colour::new(1), 2);
        let light_same = GreyState::new(Colour::new(0), 0);
        assert_eq!(p.transition(&me, &[&other], &mut rng()), me);
        assert_eq!(p.transition(&me, &[&light_same], &mut rng()), me);
    }

    #[test]
    fn light_adopts_at_full_shade() {
        let p = protocol(vec![3, 2]);
        let me = GreyState::new(Colour::new(0), 0);
        let v = GreyState::new(Colour::new(1), 1);
        assert_eq!(
            p.transition(&me, &[&v], &mut rng()),
            GreyState::new(Colour::new(1), 2)
        );
    }

    #[test]
    fn light_ignores_light() {
        let p = protocol(vec![3, 2]);
        let me = GreyState::new(Colour::new(0), 0);
        let v = GreyState::new(Colour::new(1), 0);
        assert_eq!(p.transition(&me, &[&v], &mut rng()), me);
    }

    #[test]
    fn softening_takes_exactly_weight_meetings() {
        let p = protocol(vec![4]);
        let v = GreyState::new(Colour::new(0), 4);
        let mut me = p.full_shade(0);
        let mut meetings = 0;
        let mut r = rng();
        while !me.is_light() {
            me = p.transition(&me, &[&v], &mut r);
            meetings += 1;
        }
        assert_eq!(meetings, 4);
    }

    #[test]
    fn shade_stays_in_range() {
        // Property: the shade never exceeds the colour's weight and never
        // goes negative through any interaction.
        let p = protocol(vec![2, 5]);
        let mut r = rng();
        let states: Vec<GreyState> = (0..2)
            .flat_map(|c| (0..=p.weights().get(c)).map(move |s| GreyState::new(Colour::new(c), s)))
            .collect();
        for me in &states {
            for v in &states {
                let out = p.transition(me, &[v], &mut r);
                let cap = p.weights().get(out.colour().index());
                assert!(out.shade() <= cap, "{me} meets {v} -> {out}");
            }
        }
    }

    #[test]
    fn full_shade_constructor() {
        let p = protocol(vec![2, 5]);
        assert_eq!(p.full_shade(1), GreyState::new(Colour::new(1), 5));
        assert_eq!(p.name(), "derandomised-diversification");
    }
}
