//! Configuration statistics: the counts `C_i(t)`, `A_i(t)`, `a_i(t)` of §2.

use crate::{AgentState, GreyState, Weights};

/// Per-colour counts of one population snapshot.
///
/// In the paper's notation, for each colour `i`:
/// `A_i` = dark-shaded support, `a_i` = light-shaded support, and
/// `C_i = A_i + a_i` = total support. `ξ(t) = (A_1..A_k, a_1..a_k)` is the
/// full process state; this struct is that vector plus convenience queries.
///
/// # Examples
///
/// ```
/// use pp_core::{AgentState, Colour, ConfigStats};
///
/// let states = vec![
///     AgentState::dark(Colour::new(0)),
///     AgentState::light(Colour::new(0)),
///     AgentState::dark(Colour::new(1)),
/// ];
/// let stats = ConfigStats::from_states(&states, 2);
/// assert_eq!(stats.colour_count(0), 2);
/// assert_eq!(stats.dark_count(0), 1);
/// assert_eq!(stats.light_count(0), 1);
/// assert_eq!(stats.population(), 3);
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ConfigStats {
    dark: Vec<usize>,
    light: Vec<usize>,
    n: usize,
}

impl ConfigStats {
    /// Tallies a randomised-protocol population of `k` colours.
    ///
    /// # Panics
    ///
    /// Panics if any agent's colour index is `>= k`.
    pub fn from_states(states: &[AgentState], k: usize) -> Self {
        let mut dark = vec![0usize; k];
        let mut light = vec![0usize; k];
        for s in states {
            let i = s.colour.index();
            assert!(i < k, "agent colour {i} out of range for k = {k}");
            if s.is_dark() {
                dark[i] += 1;
            } else {
                light[i] += 1;
            }
        }
        ConfigStats {
            dark,
            light,
            n: states.len(),
        }
    }

    /// Tallies a derandomised-protocol population: shade 0 counts as light,
    /// any positive shade as dark.
    ///
    /// # Panics
    ///
    /// Panics if any agent's colour index is `>= k`.
    pub fn from_grey_states(states: &[GreyState], k: usize) -> Self {
        let mut dark = vec![0usize; k];
        let mut light = vec![0usize; k];
        for s in states {
            let i = s.colour().index();
            assert!(i < k, "agent colour {i} out of range for k = {k}");
            if s.is_light() {
                light[i] += 1;
            } else {
                dark[i] += 1;
            }
        }
        ConfigStats {
            dark,
            light,
            n: states.len(),
        }
    }

    /// Builds stats directly from per-colour `(dark, light)` counts.
    pub fn from_counts(dark: Vec<usize>, light: Vec<usize>) -> Self {
        assert_eq!(dark.len(), light.len(), "count vectors must align");
        let n = dark.iter().sum::<usize>() + light.iter().sum::<usize>();
        ConfigStats { dark, light, n }
    }

    /// Number of colours `k`.
    pub fn num_colours(&self) -> usize {
        self.dark.len()
    }

    /// Population size `n`.
    pub fn population(&self) -> usize {
        self.n
    }

    /// `A_i`: dark-shaded support of colour `i`.
    ///
    /// # Panics
    ///
    /// Panics if `i >= num_colours()`.
    pub fn dark_count(&self, i: usize) -> usize {
        self.dark[i]
    }

    /// `a_i`: light-shaded support of colour `i`.
    pub fn light_count(&self, i: usize) -> usize {
        self.light[i]
    }

    /// `C_i = A_i + a_i`: total support of colour `i`.
    pub fn colour_count(&self, i: usize) -> usize {
        self.dark[i] + self.light[i]
    }

    /// `A = Σ A_i`: total dark agents.
    pub fn total_dark(&self) -> usize {
        self.dark.iter().sum()
    }

    /// `a = Σ a_i`: total light agents.
    pub fn total_light(&self) -> usize {
        self.light.iter().sum()
    }

    /// Dark counts as a slice (`A_1..A_k`).
    pub fn dark_counts(&self) -> &[usize] {
        &self.dark
    }

    /// Light counts as a slice (`a_1..a_k`).
    pub fn light_counts(&self) -> &[usize] {
        &self.light
    }

    /// Fraction of the population supporting colour `i`, `C_i/n`.
    ///
    /// # Panics
    ///
    /// Panics if the population is empty.
    pub fn colour_fraction(&self, i: usize) -> f64 {
        assert!(self.n > 0, "empty population has no fractions");
        self.colour_count(i) as f64 / self.n as f64
    }

    /// The diversity error of Eq. (1): `max_i |C_i/n − w_i/w|`.
    ///
    /// # Panics
    ///
    /// Panics if `weights.len() != num_colours()` or the population is empty.
    pub fn max_diversity_error(&self, weights: &Weights) -> f64 {
        assert_eq!(
            weights.len(),
            self.num_colours(),
            "weight table size mismatch"
        );
        (0..self.num_colours())
            .map(|i| (self.colour_fraction(i) - weights.fair_share(i)).abs())
            .fold(0.0, f64::max)
    }

    /// The Phase-3 additive error of Theorem 2.13 for the dark counts:
    /// `max_i |A_i − w_i·n/(1+w)|`.
    pub fn max_dark_equilibrium_error(&self, weights: &Weights) -> f64 {
        assert_eq!(
            weights.len(),
            self.num_colours(),
            "weight table size mismatch"
        );
        (0..self.num_colours())
            .map(|i| {
                (self.dark[i] as f64 - weights.equilibrium_dark_fraction(i) * self.n as f64).abs()
            })
            .fold(0.0, f64::max)
    }

    /// The Phase-3 additive error for the light counts:
    /// `max_i |a_i − (w_i/w)·n/(1+w)|`.
    pub fn max_light_equilibrium_error(&self, weights: &Weights) -> f64 {
        assert_eq!(
            weights.len(),
            self.num_colours(),
            "weight table size mismatch"
        );
        (0..self.num_colours())
            .map(|i| {
                (self.light[i] as f64 - weights.equilibrium_light_fraction(i) * self.n as f64).abs()
            })
            .fold(0.0, f64::max)
    }

    /// Returns `true` if every colour has at least one dark supporter — the
    /// precondition `ξ ∈ Ω` of the paper's state space, and the quantity
    /// sustainability promises never to break.
    pub fn all_colours_alive(&self) -> bool {
        self.dark.iter().all(|&a| a >= 1)
    }

    /// The smallest dark support over all colours.
    pub fn min_dark_count(&self) -> usize {
        self.dark.iter().copied().min().unwrap_or(0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Colour;

    fn sample() -> ConfigStats {
        // Colour 0: 3 dark + 1 light; colour 1: 2 dark + 2 light.
        ConfigStats::from_counts(vec![3, 2], vec![1, 2])
    }

    #[test]
    fn counts_add_up() {
        let s = sample();
        assert_eq!(s.population(), 8);
        assert_eq!(s.colour_count(0), 4);
        assert_eq!(s.colour_count(1), 4);
        assert_eq!(s.total_dark(), 5);
        assert_eq!(s.total_light(), 3);
        assert_eq!(s.dark_counts(), &[3, 2]);
        assert_eq!(s.light_counts(), &[1, 2]);
    }

    #[test]
    fn from_states_matches_manual() {
        let states = vec![
            AgentState::dark(Colour::new(0)),
            AgentState::dark(Colour::new(0)),
            AgentState::dark(Colour::new(0)),
            AgentState::light(Colour::new(0)),
            AgentState::dark(Colour::new(1)),
            AgentState::dark(Colour::new(1)),
            AgentState::light(Colour::new(1)),
            AgentState::light(Colour::new(1)),
        ];
        assert_eq!(ConfigStats::from_states(&states, 2), sample());
    }

    #[test]
    fn grey_states_classify_by_positivity() {
        let states = vec![
            GreyState::new(Colour::new(0), 0),
            GreyState::new(Colour::new(0), 1),
            GreyState::new(Colour::new(1), 5),
        ];
        let s = ConfigStats::from_grey_states(&states, 2);
        assert_eq!(s.light_count(0), 1);
        assert_eq!(s.dark_count(0), 1);
        assert_eq!(s.dark_count(1), 1);
    }

    #[test]
    fn diversity_error_zero_at_fair_share() {
        // 2 colours with weights 1 and 3 on n = 8: fair shares 2 and 6.
        let w = Weights::new(vec![1.0, 3.0]).unwrap();
        let s = ConfigStats::from_counts(vec![1, 3], vec![1, 3]);
        assert!(s.max_diversity_error(&w) < 1e-12);
    }

    #[test]
    fn diversity_error_detects_skew() {
        let w = Weights::uniform(2);
        let s = ConfigStats::from_counts(vec![7, 1], vec![0, 0]);
        // Fractions (7/8, 1/8) vs fair (1/2, 1/2): error 3/8.
        assert!((s.max_diversity_error(&w) - 0.375).abs() < 1e-12);
    }

    #[test]
    fn equilibrium_errors_zero_at_eq7() {
        // Eq. (7) with w = (1, 3), w_total = 4, n = 100:
        // A_i = w_i n/(1+w) = (20, 60); a_i = (w_i/w) n/(1+w) = (5, 15).
        let w = Weights::new(vec![1.0, 3.0]).unwrap();
        let s = ConfigStats::from_counts(vec![20, 60], vec![5, 15]);
        assert!(s.max_dark_equilibrium_error(&w) < 1e-9);
        assert!(s.max_light_equilibrium_error(&w) < 1e-9);
        assert_eq!(s.population(), 100);
    }

    #[test]
    fn aliveness() {
        assert!(sample().all_colours_alive());
        let dead = ConfigStats::from_counts(vec![3, 0], vec![0, 4]);
        assert!(!dead.all_colours_alive());
        assert_eq!(dead.min_dark_count(), 0);
        assert_eq!(sample().min_dark_count(), 2);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn from_states_checks_colour_range() {
        ConfigStats::from_states(&[AgentState::dark(Colour::new(5))], 2);
    }
}
