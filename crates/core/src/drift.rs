//! Exact one-step conditional drifts of the potentials — the quantities
//! bounded by Lemma 2.9 (for `φ`), Lemma 2.10 (for `ψ`), and Lemma 4.1
//! (for `σ²`).
//!
//! Conditioned on the configuration `ξ(t)`, only `O(k)` transition events
//! are possible in one time-step, each with a closed-form probability:
//!
//! * **softening** of colour `i` (rule 2): the scheduled agent is dark `i`
//!   and observes another dark `i`, then flips its coin —
//!   probability `A_i(A_i−1) / (n(n−1)·w_i)`; effect `A_i ↦ A_i−1`,
//!   `a_i ↦ a_i+1`;
//! * **adoption** of colour `i` from light colour `j` (rule 1): the
//!   scheduled agent is light `j` and observes a dark `i` —
//!   probability `a_j·A_i / (n(n−1))`; effect `a_j ↦ a_j−1`, `A_i ↦ A_i+1`.
//!
//! Summing `p_e · Δpotential(e)` over events gives the **exact** drift
//! `E[potential(t+1) − potential(t) | ξ(t)]`, no Monte Carlo needed. The
//! lemmas assert these drifts are contractive inside the good set `E`:
//!
//! ```text
//! E[φ(t+1)|F_t] ≤ (1 − c₁/(n·w))·φ(t) + c₂        (Lemma 2.9(1))
//! E[ψ(t+1)|F_t] ≤ (1 − c₁/n)·ψ(t) + c₂           (Lemma 2.10(1))
//! E[σ²(t+1)|F_t] ≤ (1 − c₁/n)·σ²(t) + c₂         (Lemma 4.1(1))
//! ```
//!
//! Experiment `drift_lemmas` tabulates the measured contraction
//! coefficients along real trajectories; the tests here cross-check the
//! closed forms against one-step Monte Carlo.

use crate::{ConfigStats, Weights};

/// One possible transition event with its probability and count deltas.
#[derive(Debug, Clone, Copy, PartialEq)]
struct Event {
    probability: f64,
    /// Colour whose dark count changes, with the delta (−1 soften, +1 adopt).
    dark_colour: usize,
    dark_delta: i64,
    /// Colour whose light count changes, with the delta.
    light_colour: usize,
    light_delta: i64,
}

/// Enumerates all positive-probability events of one time-step.
fn events(stats: &ConfigStats, weights: &Weights) -> Vec<Event> {
    assert_eq!(
        weights.len(),
        stats.num_colours(),
        "weight table size mismatch"
    );
    let n = stats.population();
    assert!(n >= 2, "need at least two agents");
    let denom = (n * (n - 1)) as f64;
    let k = stats.num_colours();
    let mut out = Vec::with_capacity(k + k * k);
    for i in 0..k {
        let a_dark = stats.dark_count(i) as f64;
        // Softening of colour i.
        let p_soften = a_dark * (a_dark - 1.0) / (denom * weights.get(i));
        if p_soften > 0.0 {
            out.push(Event {
                probability: p_soften,
                dark_colour: i,
                dark_delta: -1,
                light_colour: i,
                light_delta: 1,
            });
        }
        // Adoption of colour i by each light colour j.
        for j in 0..k {
            let p_adopt = stats.light_count(j) as f64 * a_dark / denom;
            if p_adopt > 0.0 {
                out.push(Event {
                    probability: p_adopt,
                    dark_colour: i,
                    dark_delta: 1,
                    light_colour: j,
                    light_delta: -1,
                });
            }
        }
    }
    out
}

/// Pairwise-quadratic potential of scaled counts, with one coordinate
/// shifted: `Σ_{i,j} (x_i/w_i − x_j/w_j)²` where `x = counts` except
/// `x[shift_at] += shift`.
fn shifted_quadratic(counts: &[usize], weights: &Weights, shift_at: usize, shift: i64) -> f64 {
    let k = counts.len() as f64;
    let mut q1 = 0.0;
    let mut q2 = 0.0;
    for (i, &c) in counts.iter().enumerate() {
        let mut v = c as f64;
        if i == shift_at {
            v += shift as f64;
        }
        let q = v / weights.get(i);
        q1 += q;
        q2 += q * q;
    }
    (2.0 * k * q2 - 2.0 * q1 * q1).max(0.0)
}

/// Exact conditional drift `E[φ(t+1) − φ(t) | ξ(t)]` of the dark potential.
///
/// # Examples
///
/// ```
/// use pp_core::{drift::expected_phi_drift, ConfigStats, Weights};
///
/// let w = Weights::uniform(2);
/// // Heavily imbalanced dark counts: the drift must push φ down.
/// let stats = ConfigStats::from_counts(vec![70, 10], vec![10, 10]);
/// assert!(expected_phi_drift(&stats, &w) < 0.0);
/// ```
///
/// # Panics
///
/// Panics if the weight table size mismatches or `n < 2`.
pub fn expected_phi_drift(stats: &ConfigStats, weights: &Weights) -> f64 {
    let base = crate::potential::phi(stats, weights);
    events(stats, weights)
        .iter()
        .map(|e| {
            let new = shifted_quadratic(stats.dark_counts(), weights, e.dark_colour, e.dark_delta);
            e.probability * (new - base)
        })
        .sum()
}

/// Exact conditional drift `E[ψ(t+1) − ψ(t) | ξ(t)]` of the light potential.
///
/// # Panics
///
/// Panics if the weight table size mismatches or `n < 2`.
pub fn expected_psi_drift(stats: &ConfigStats, weights: &Weights) -> f64 {
    let base = crate::potential::psi(stats, weights);
    events(stats, weights)
        .iter()
        .map(|e| {
            let new =
                shifted_quadratic(stats.light_counts(), weights, e.light_colour, e.light_delta);
            e.probability * (new - base)
        })
        .sum()
}

/// Exact conditional drift `E[σ²(t+1) − σ²(t) | ξ(t)]` of the Phase-3
/// potential `σ² = (A/w − a)²`.
///
/// # Panics
///
/// Panics if the weight table size mismatches or `n < 2`.
pub fn expected_sigma_sq_drift(stats: &ConfigStats, weights: &Weights) -> f64 {
    let w = weights.total();
    let a_total = stats.total_dark() as f64;
    let light_total = stats.total_light() as f64;
    let sigma = a_total / w - light_total;
    let base = sigma * sigma;
    events(stats, weights)
        .iter()
        .map(|e| {
            let new_sigma =
                (a_total + e.dark_delta as f64) / w - (light_total + e.light_delta as f64);
            e.probability * (new_sigma * new_sigma - base)
        })
        .sum()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{init, Diversification};
    use pp_engine::{Protocol, Simulator};
    use pp_graph::Complete;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    /// Monte-Carlo estimate of a potential drift from a fixed configuration,
    /// used to validate the closed forms.
    fn mc_drift(
        stats: &ConfigStats,
        weights: &Weights,
        potential: impl Fn(&ConfigStats, &Weights) -> f64,
        trials: u64,
    ) -> f64 {
        let k = weights.len();
        let base = potential(stats, weights);
        let mut counts: Vec<usize> = Vec::new();
        // Materialise a population matching the counts.
        let mut states = Vec::new();
        for i in 0..k {
            counts.push(stats.dark_count(i));
            for _ in 0..stats.dark_count(i) {
                states.push(crate::AgentState::dark(crate::Colour::new(i)));
            }
            for _ in 0..stats.light_count(i) {
                states.push(crate::AgentState::light(crate::Colour::new(i)));
            }
        }
        let n = states.len();
        let protocol = Diversification::new(weights.clone());
        let mut total = 0.0;
        for seed in 0..trials {
            let mut sim = Simulator::new(protocol.clone(), Complete::new(n), states.clone(), seed);
            sim.step();
            let after = ConfigStats::from_states(sim.population().states(), k);
            total += potential(&after, weights) - base;
        }
        total / trials as f64
    }

    #[test]
    fn phi_drift_matches_monte_carlo() {
        let weights = Weights::new(vec![1.0, 2.0]).unwrap();
        let stats = ConfigStats::from_counts(vec![40, 20], vec![10, 10]);
        let exact = expected_phi_drift(&stats, &weights);
        let mc = mc_drift(&stats, &weights, crate::potential::phi, 40_000);
        assert!(
            (exact - mc).abs() < 0.3 + 0.05 * exact.abs(),
            "exact {exact} vs MC {mc}"
        );
    }

    #[test]
    fn psi_drift_matches_monte_carlo() {
        let weights = Weights::new(vec![1.0, 2.0]).unwrap();
        let stats = ConfigStats::from_counts(vec![30, 30], vec![18, 2]);
        let exact = expected_psi_drift(&stats, &weights);
        let mc = mc_drift(&stats, &weights, crate::potential::psi, 40_000);
        assert!(
            (exact - mc).abs() < 0.3 + 0.05 * exact.abs(),
            "exact {exact} vs MC {mc}"
        );
    }

    #[test]
    fn sigma_drift_matches_monte_carlo() {
        let weights = Weights::new(vec![1.0, 2.0]).unwrap();
        let stats = ConfigStats::from_counts(vec![50, 25], vec![3, 2]);
        let exact = expected_sigma_sq_drift(&stats, &weights);
        let mc = mc_drift(&stats, &weights, crate::potential::sigma_sq, 40_000);
        assert!(
            (exact - mc).abs() < 0.5 + 0.05 * exact.abs(),
            "exact {exact} vs MC {mc}"
        );
    }

    #[test]
    fn imbalanced_phi_has_negative_drift() {
        // Lemma 2.9(1): inside E the drift is contractive. Use a strongly
        // imbalanced dark profile with healthy light mass.
        let weights = Weights::uniform(3);
        let stats = ConfigStats::from_counts(vec![60, 10, 5], vec![9, 8, 8]);
        assert!(expected_phi_drift(&stats, &weights) < 0.0);
    }

    #[test]
    fn balanced_configuration_has_small_drift() {
        // At perfect equilibrium (Eq. (7)) the drift is O(1): the additive
        // c₂ term of the lemma, not a contraction.
        let weights = Weights::new(vec![1.0, 3.0]).unwrap();
        // n = 100, w = 4: A = (20, 60), a = (5, 15); φ = 0.
        let stats = ConfigStats::from_counts(vec![20, 60], vec![5, 15]);
        let d = expected_phi_drift(&stats, &weights);
        assert!(d.abs() < 5.0, "drift at equilibrium {d}");
        assert!(d >= 0.0, "φ = 0 cannot decrease");
    }

    #[test]
    fn drift_contraction_along_trajectory() {
        // Along a real trajectory inside the good set, the measured
        // contraction coefficient of Lemma 2.9(1) stays positive:
        // E[Δφ] ≤ −c₁·φ/(n·w) + c₂ with c₁ > 0 whenever φ is large.
        let weights = Weights::new(vec![1.0, 1.0, 2.0]).unwrap();
        let n = 300;
        let states = init::all_dark_single_minority(n, &weights);
        let mut sim = Simulator::new(
            Diversification::new(weights.clone()),
            Complete::new(n),
            states,
            11,
        );
        // Move past the very beginning so light mass exists.
        sim.run(5 * n as u64);
        let mut violations = 0;
        for _ in 0..50 {
            sim.run(n as u64);
            let stats = ConfigStats::from_states(sim.population().states(), 3);
            let phi_val = crate::potential::phi(&stats, &weights);
            let drift = expected_phi_drift(&stats, &weights);
            if phi_val > 100.0 * n as f64 && drift >= 0.0 {
                violations += 1;
            }
        }
        assert!(
            violations <= 2,
            "{violations}/50 high-φ configurations had non-negative drift"
        );
    }

    #[test]
    fn event_probabilities_are_subunit() {
        let weights = Weights::uniform(2);
        let stats = ConfigStats::from_counts(vec![5, 5], vec![5, 5]);
        let total: f64 = events(&stats, &weights).iter().map(|e| e.probability).sum();
        assert!(
            total > 0.0 && total <= 1.0,
            "total event probability {total}"
        );
    }

    #[test]
    fn protocol_clone_used_in_mc_is_deterministic() {
        // Guard for the MC helper itself.
        let weights = Weights::uniform(2);
        let p = Diversification::new(weights.clone());
        let me = crate::AgentState::light(crate::Colour::new(0));
        let v = crate::AgentState::dark(crate::Colour::new(1));
        let mut r1 = StdRng::seed_from_u64(3);
        let mut r2 = StdRng::seed_from_u64(3);
        assert_eq!(
            p.transition(&me, &[&v], &mut r1),
            p.transition(&me, &[&v], &mut r2)
        );
    }
}
