//! Packed `u32` encoding of the Diversification state, for the
//! monomorphized fast path of `pp_engine`.
//!
//! The agent state `(colour, shade)` packs into a single `u32` as
//! `colour << 1 | shade_bit` (dark = 1, matching
//! [`Shade::bit`](crate::Shade::bit)). Rule 1 of the protocol — light adopts an observed dark
//! state wholesale — then becomes a plain copy of the observed word, and
//! rule 2's colour comparison a single integer equality.
//!
//! [`PackedProtocol`] is implemented directly on [`Diversification`], so
//! the packed engine runs the *same protocol value* as the generic engine;
//! randomness is consumed identically (one `random_bool(1/w_i)` draw,
//! exactly when two dark agents of the same colour meet), which makes
//! shared-seed trajectories of the two engines equal bit for bit — see the
//! equivalence tests at the bottom of this module.

use crate::{AgentState, ConfigStats, Diversification};
use pp_engine::{PackedProtocol, TurboWord};
use rand::{Rng, RngExt};

/// Packs an agent state as `colour << 1 | shade_bit`.
///
/// # Examples
///
/// ```
/// use pp_core::{packed, AgentState, Colour};
///
/// let s = AgentState::dark(Colour::new(3));
/// assert_eq!(packed::pack_state(&s), 0b111);
/// assert_eq!(packed::unpack_state(0b111), s);
/// ```
///
/// # Panics
///
/// Panics if the colour index does not fit in 31 bits.
pub fn pack_state(state: &AgentState) -> u32 {
    let c = u32::try_from(state.colour.index()).expect("colour index fits in u32");
    assert!(c < (1 << 31), "colour index {c} too large to pack");
    (c << 1) | u32::from(state.shade.bit())
}

/// Inverse of [`pack_state`].
pub fn unpack_state(packed: u32) -> AgentState {
    let colour = crate::Colour::new((packed >> 1) as usize);
    if packed & 1 == 1 {
        AgentState::dark(colour)
    } else {
        AgentState::light(colour)
    }
}

/// Whether every Diversification state with `k` colours packs into a byte.
///
/// The largest packed word is `((k − 1) << 1) | 1`, which fits `u8` exactly
/// when `k ≤ 128`; the workspace advertises the round bound `k ≤ 127`,
/// comfortably inside it.
pub fn fits_u8(k: usize) -> bool {
    k >= 1 && ((k - 1) << 1 | 1) <= u8::MAX as usize
}

/// Packs an agent state into a byte, for the turbo engine's `u8` state
/// storage (quarter the footprint of the `u32` array; an `n = 10⁶`
/// population fits in under 1 MB).
///
/// Same encoding as [`pack_state`], narrowed: `colour << 1 | shade_bit`.
///
/// # Examples
///
/// ```
/// use pp_core::{packed, AgentState, Colour};
///
/// let s = AgentState::dark(Colour::new(3));
/// assert_eq!(packed::pack_state_u8(&s), 0b111);
/// assert_eq!(packed::unpack_state_u8(0b111), s);
/// ```
///
/// # Panics
///
/// Panics if the colour index is 128 or above (see [`fits_u8`]).
pub fn pack_state_u8(state: &AgentState) -> u8 {
    let wide = pack_state(state);
    u8::try_from(wide).unwrap_or_else(|_| {
        panic!(
            "colour {} does not fit u8 packing (k must be <= 127)",
            state.colour.index()
        )
    })
}

/// Inverse of [`pack_state_u8`].
pub fn unpack_state_u8(packed: u8) -> AgentState {
    unpack_state(packed as u32)
}

/// Tallies a turbo-engine state array (either word width) into
/// [`ConfigStats`], without unpacking.
///
/// # Panics
///
/// Panics if any packed colour index is `>= k`.
pub fn config_stats_from_words<W: pp_engine::TurboWord>(states: &[W], k: usize) -> ConfigStats {
    let mut dark = vec![0usize; k];
    let mut light = vec![0usize; k];
    for w in states {
        let p = w.widen();
        let i = (p >> 1) as usize;
        assert!(i < k, "packed colour {i} out of range for k = {k}");
        if p & 1 == 1 {
            dark[i] += 1;
        } else {
            light[i] += 1;
        }
    }
    ConfigStats::from_counts(dark, light)
}

/// Tallies a packed population into [`ConfigStats`], without unpacking.
///
/// # Panics
///
/// Panics if any packed colour index is `>= k`.
pub fn config_stats_from_packed(states: &[u32], k: usize) -> ConfigStats {
    config_stats_from_words(states, k)
}

/// Converts an [`Engine::class_counts`](pp_engine::Engine::class_counts)
/// tally — agents counted per packed word — into [`ConfigStats`].
///
/// The counts vector may be shorter than `2k` (trailing unoccupied words
/// are trimmed by the engines); missing classes count zero. This is the
/// observable every engine-generic experiment predicate goes through, so
/// it must stay `O(k)`.
///
/// # Panics
///
/// Panics if any occupied packed word encodes a colour `>= k`.
pub fn config_stats_from_class_counts(counts: &[u64], k: usize) -> ConfigStats {
    let mut dark = vec![0usize; k];
    let mut light = vec![0usize; k];
    for (w, &count) in counts.iter().enumerate() {
        if count == 0 {
            continue;
        }
        let i = w >> 1;
        assert!(i < k, "packed colour {i} out of range for k = {k}");
        if w & 1 == 1 {
            dark[i] += count as usize;
        } else {
            light[i] += count as usize;
        }
    }
    ConfigStats::from_counts(dark, light)
}

impl PackedProtocol for Diversification {
    type State = AgentState;

    fn pack(&self, state: &AgentState) -> u32 {
        pack_state(state)
    }

    fn unpack(&self, packed: u32) -> AgentState {
        unpack_state(packed)
    }

    #[inline]
    fn transition<R: Rng>(&self, me: u32, observed: &[u32], rng: &mut R) -> u32 {
        let v = observed[0];
        if me & 1 == 0 {
            // Rule 1: light adopts an observed dark state wholesale (a dark
            // packed word *is* `dark(colour)`); light–light is a no-op.
            if v & 1 == 1 {
                v
            } else {
                me
            }
        } else if v == me {
            // Rule 2: two dark agents of the same colour ⇒ soften w.p.
            // 1/w_i. Same single draw as the generic transition.
            if rng.random_bool(self.weights().inverse((me >> 1) as usize)) {
                me & !1
            } else {
                me
            }
        } else {
            // Rule 3: every other interaction is a no-op.
            me
        }
    }

    /// The turbo-path transition: same distribution as
    /// [`transition`](PackedProtocol::transition), compiled branch-free.
    ///
    /// The exact rule draws randomness only when two dark agents of the
    /// same colour meet, which makes the rule-2 branch data-dependent and
    /// unpredictable — and on the turbo batch path there is no serial RNG
    /// latency to hide the mispredict flush behind. Here all three rules
    /// collapse into mask arithmetic over the engine-supplied entropy
    /// word:
    ///
    /// * rules 1 and 3 reduce to an arithmetic select on
    ///   `(me light) & (v dark)`;
    /// * rule 2's soften becomes an integer compare of `aux`'s low 32
    ///   bits against the per-colour threshold `⌊2³²/w_i⌋` — a
    ///   `Bernoulli(1/w_i)` draw with bias below `2⁻³²`, far outside
    ///   what the statistical harness (or any feasible ensemble) can
    ///   resolve.
    #[inline]
    fn transition_turbo<R: Rng>(&self, me: u32, observed: &[u32], aux: u64, _rng: &mut R) -> u32 {
        let v = observed[0];
        let soften = (aux & 0xFFFF_FFFF) < self.weights().inverse_bits((me >> 1) as usize);
        // Rules 1/3: light adopts an observed dark word, else keeps.
        let adopt = ((me & 1) ^ 1) & (v & 1);
        let mask = adopt.wrapping_neg();
        let r1 = (v & mask) | (me & !mask);
        // Rule 2: a dark pair of one colour clears the shade bit w.p. 1/w_i.
        let s2 = (me & 1) & u32::from(v == me) & u32::from(soften);
        r1 & !s2
    }

    /// The ensemble-path transition: [`transition_turbo`]'s mask
    /// arithmetic applied to all `L` lanes at once, in the engine's
    /// storage width.
    ///
    /// Per lane this is *identical arithmetic* to `transition_turbo` —
    /// same threshold compare, same masks, every operation bitwise or an
    /// equality, so running it at `W = u8` instead of `u32` changes no
    /// result bit — and `L = 1` therefore stays bit-exact with the turbo
    /// engine. The per-colour threshold lookup (the one memory access,
    /// with its bounds-check panic path) runs in its own lane loop, so
    /// the mask arithmetic below it is a pure branch-free loop the
    /// compiler vectorizes — at `u8`, a register holds 32 replicas per
    /// instruction.
    ///
    /// [`transition_turbo`]: PackedProtocol::transition_turbo
    #[inline]
    fn transition_vec<W: TurboWord, const L: usize>(
        &self,
        me: &mut [W; L],
        observed: &[[W; L]],
        aux: &[u64; L],
    ) {
        let v = &observed[0];
        let mut soften = [W::ZERO; L];
        // Hoist the threshold table; clamping the index (a no-op for
        // valid encodings, which `transition_turbo` checks in debug
        // builds) keeps the lookup loop free of panic edges.
        let tbl = self.weights().inverse_bits_table();
        let last = tbl.len() - 1;
        for l in 0..L {
            let i = (me[l].widen() >> 1) as usize;
            debug_assert!(i <= last, "packed state {i} out of range");
            soften[l] = W::from_bool((aux[l] & 0xFFFF_FFFF) < tbl[i.min(last)]);
        }
        for l in 0..L {
            let m0 = me[l];
            let adopt = ((m0 & W::ONE) ^ W::ONE) & (v[l] & W::ONE);
            let mask = adopt.wrapping_neg();
            let r1 = (v[l] & mask) | (m0 & !mask);
            let s2 = (m0 & W::ONE) & W::from_bool(v[l] == m0) & soften[l];
            me[l] = r1 & !s2;
        }
    }

    /// The exact rule as data, rule by rule: rule 1 is a deterministic
    /// adopt, rule 2 a `{soften 1/wᵢ, keep 1 − 1/wᵢ}` split (collapsed to
    /// one entry at weight 1), rule 3 a deterministic no-op. This is what
    /// the `pp-check` explorer walks; the engines' `transition` variants
    /// are cross-checked against its support.
    fn outcomes(&self, me: u32, observed: &[u32]) -> Option<Vec<(u32, f64)>> {
        let v = observed[0];
        Some(if me & 1 == 0 {
            // Rule 1: light adopts an observed dark word; light–light no-op.
            vec![(if v & 1 == 1 { v } else { me }, 1.0)]
        } else if v == me {
            // Rule 2: a dark pair of one colour softens w.p. 1/wᵢ.
            let p = self.weights().inverse((me >> 1) as usize);
            if p >= 1.0 {
                vec![(me & !1, 1.0)]
            } else {
                vec![(me & !1, p), (me, 1.0 - p)]
            }
        } else {
            // Rule 3: everything else is a no-op.
            vec![(me, 1.0)]
        })
    }

    fn name(&self) -> String {
        "diversification".to_string()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{init, Colour, Shade, Weights};
    use pp_engine::{PackedSimulator, Protocol, Simulator};
    use pp_graph::{Complete, Csr, Cycle, Hypercube, Star, Topology, Torus2d};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn weights() -> Weights {
        Weights::new(vec![1.0, 1.0, 2.0, 4.0]).unwrap()
    }

    #[test]
    fn pack_roundtrip() {
        for i in 0..6 {
            for s in [Shade::Dark, Shade::Light] {
                let state = AgentState {
                    colour: Colour::new(i),
                    shade: s,
                };
                assert_eq!(unpack_state(pack_state(&state)), state);
            }
        }
    }

    #[test]
    fn packed_transition_matches_generic_case_by_case() {
        let p = Diversification::new(weights());
        let cases = [
            (
                AgentState::light(Colour::new(0)),
                AgentState::dark(Colour::new(2)),
            ),
            (
                AgentState::light(Colour::new(1)),
                AgentState::light(Colour::new(2)),
            ),
            (
                AgentState::dark(Colour::new(3)),
                AgentState::dark(Colour::new(3)),
            ),
            (
                AgentState::dark(Colour::new(3)),
                AgentState::dark(Colour::new(1)),
            ),
            (
                AgentState::dark(Colour::new(2)),
                AgentState::light(Colour::new(2)),
            ),
        ];
        for (me, v) in cases {
            // Identical RNG states ⇒ identical outcomes, including the
            // probabilistic rule-2 draw.
            let mut ra = StdRng::seed_from_u64(99);
            let mut rb = StdRng::seed_from_u64(99);
            for _ in 0..200 {
                let generic = Protocol::transition(&p, &me, &[&v], &mut ra);
                let packed =
                    PackedProtocol::transition(&p, pack_state(&me), &[pack_state(&v)], &mut rb);
                assert_eq!(pack_state(&generic), packed, "me={me}, v={v}");
            }
        }
    }

    #[test]
    fn u8_codec_roundtrips_through_k_127() {
        for i in 0..128 {
            for s in [Shade::Dark, Shade::Light] {
                let state = AgentState {
                    colour: Colour::new(i),
                    shade: s,
                };
                let byte = pack_state_u8(&state);
                assert_eq!(unpack_state_u8(byte), state);
                // The byte is the narrowed u32 word, bit for bit.
                assert_eq!(byte as u32, pack_state(&state));
            }
        }
        assert!(fits_u8(1));
        assert!(fits_u8(127));
        assert!(fits_u8(128));
        assert!(!fits_u8(129));
    }

    #[test]
    #[should_panic(expected = "does not fit u8")]
    fn u8_codec_rejects_colour_128() {
        pack_state_u8(&AgentState::dark(Colour::new(128)));
    }

    #[test]
    fn config_stats_from_words_matches_both_widths() {
        let w = weights();
        let states = init::all_dark_single_minority(100, &w);
        let wide: Vec<u32> = states.iter().map(pack_state).collect();
        let narrow: Vec<u8> = states.iter().map(pack_state_u8).collect();
        let expect = ConfigStats::from_states(&states, 4);
        assert_eq!(config_stats_from_words(&wide, 4), expect);
        assert_eq!(config_stats_from_words(&narrow, 4), expect);
    }

    /// The branchless turbo transition is deterministic-case identical to
    /// the exact rule and matches rule 2's soften probability empirically.
    #[test]
    fn turbo_transition_matches_exact_distribution() {
        let p = Diversification::new(weights());
        let mut rng = StdRng::seed_from_u64(17);
        // Deterministic cases: light/dark combinations where no randomness
        // may influence the outcome.
        let light0 = pack_state(&AgentState::light(Colour::new(0)));
        let dark2 = pack_state(&AgentState::dark(Colour::new(2)));
        let dark3 = pack_state(&AgentState::dark(Colour::new(3)));
        for _ in 0..100 {
            let aux = rng.next_u64();
            assert_eq!(
                PackedProtocol::transition_turbo(&p, light0, &[dark2], aux, &mut rng),
                dark2,
                "light must adopt observed dark"
            );
            assert_eq!(
                PackedProtocol::transition_turbo(&p, dark3, &[dark2], aux, &mut rng),
                dark3,
                "dark pair of different colours is a no-op"
            );
            assert_eq!(
                PackedProtocol::transition_turbo(&p, light0, &[light0], aux, &mut rng),
                light0,
                "light-light is a no-op"
            );
        }
        // Probabilistic case: dark pair of colour 3 (weight 4) softens
        // w.p. 1/4.
        let trials = 200_000;
        let softened = (0..trials)
            .filter(|_| {
                let aux = rng.next_u64();
                PackedProtocol::transition_turbo(&p, dark3, &[dark3], aux, &mut rng) == dark3 & !1
            })
            .count();
        let frac = softened as f64 / trials as f64;
        assert!(
            (frac - 0.25).abs() < 0.005,
            "soften frequency {frac} (expected 1/4)"
        );
    }

    /// The lane-parallel transition is, per lane, the same function as the
    /// turbo transition — checked exhaustively against `transition_turbo`
    /// on random lane mixes, plus the rule-2 soften frequency directly.
    #[test]
    fn vec_transition_matches_turbo_per_lane() {
        const L: usize = 8;
        let p = Diversification::new(weights());
        let mut rng = StdRng::seed_from_u64(23);
        let word = |r: &mut StdRng| {
            let colour = r.next_u64() as u32 % 4;
            let shade = r.next_u64() as u32 & 1;
            (colour << 1) | shade
        };
        for _ in 0..2_000 {
            let mut me = [0u32; L];
            let mut v = [0u32; L];
            let mut aux = [0u64; L];
            for l in 0..L {
                me[l] = word(&mut rng);
                v[l] = word(&mut rng);
                aux[l] = rng.next_u64();
            }
            let expected: Vec<u32> = (0..L)
                .map(|l| PackedProtocol::transition_turbo(&p, me[l], &[v[l]], aux[l], &mut rng))
                .collect();
            PackedProtocol::transition_vec(&p, &mut me, &[v], &aux);
            assert_eq!(me.to_vec(), expected);
        }
        // Probabilistic rule: a dark colour-3 pair (weight 4) softens in
        // each lane independently w.p. 1/4.
        let dark3 = pack_state(&AgentState::dark(Colour::new(3)));
        let trials = 25_000;
        let mut softened = [0u32; L];
        for _ in 0..trials {
            let mut me = [dark3; L];
            let v = [dark3; L];
            let mut aux = [0u64; L];
            for a in aux.iter_mut() {
                *a = rng.next_u64();
            }
            PackedProtocol::transition_vec(&p, &mut me, &[v], &aux);
            for l in 0..L {
                softened[l] += u32::from(me[l] == dark3 & !1);
            }
        }
        for (l, &s) in softened.iter().enumerate() {
            let frac = s as f64 / trials as f64;
            assert!(
                (frac - 0.25).abs() < 0.02,
                "lane {l} soften frequency {frac} (expected 1/4)"
            );
        }
    }

    #[test]
    fn config_stats_from_packed_matches_unpacked() {
        let w = weights();
        let states = init::all_dark_single_minority(100, &w);
        let packed: Vec<u32> = states.iter().map(pack_state).collect();
        assert_eq!(
            config_stats_from_packed(&packed, 4),
            ConfigStats::from_states(&states, 4)
        );
    }

    /// The tentpole guarantee: on every topology family, the packed fast
    /// path reproduces the generic engine's trajectory exactly under a
    /// shared seed.
    #[test]
    fn shared_seed_trajectories_match_generic_engine() {
        fn check<T: Topology + Clone>(topology: T, n: usize, seed: u64) {
            let w = weights();
            let states = init::all_dark_balanced(n, &w);
            let mut fast = PackedSimulator::new(
                Diversification::new(w.clone()),
                topology.clone(),
                &states,
                seed,
            );
            let mut reference = Simulator::new(Diversification::new(w), topology, states, seed);
            for _ in 0..10 {
                fast.run(2_000);
                reference.run(2_000);
                assert_eq!(
                    fast.states_unpacked(),
                    reference.population().states(),
                    "diverged on {} by step {}",
                    fast.topology().name(),
                    fast.step_count()
                );
            }
        }
        check(Complete::new(64), 64, 11);
        check(Cycle::new(64), 64, 12);
        check(Torus2d::new(8, 8), 64, 13);
        check(Hypercube::new(6), 64, 14);
        check(Star::new(64), 64, 15);
        check(
            Csr::from_topology(&Torus2d::new(8, 8)).with_name("torus-csr"),
            64,
            16,
        );
    }

    /// A `Box<dyn Topology>` reference simulator (the way `t10` used to
    /// run) over the *same* CSR also matches — the fast path removes the
    /// dispatch, not the dynamics. (Exact equality needs the same
    /// representation on both sides: an arithmetic `Cycle` and its CSR
    /// lowering agree in distribution but consume the RNG differently.)
    #[test]
    fn matches_boxed_dyn_reference() {
        let w = weights();
        let n = 100;
        let states = init::all_dark_balanced(n, &w);
        let csr = Csr::from_topology(&Cycle::new(n));
        let boxed: Box<dyn Topology> = Box::new(csr.clone());
        let mut fast = PackedSimulator::new(Diversification::new(w.clone()), csr, &states, 5);
        let mut reference = Simulator::new(Diversification::new(w), boxed, states, 5);
        fast.run(50_000);
        reference.run(50_000);
        assert_eq!(fast.states_unpacked(), reference.population().states());
    }
}
