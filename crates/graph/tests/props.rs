//! Property-based tests: every topology obeys the `Topology` contract, and
//! every family's CSR lowering samples partners from the same distribution.

use pp_graph::{
    erdos_renyi, random_regular, stochastic_block_model, watts_strogatz, AdjacencyList, Complete,
    CompleteBipartite, Csr, Cycle, Hypercube, Path, Star, Topology, Torus2d,
};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Checks the core contract on every node of `g`:
/// sampled partners are valid neighbours, degrees match neighbour lists,
/// edges are symmetric, and no node neighbours itself.
fn check_contract<T: Topology>(g: &T, seed: u64) {
    let mut rng = StdRng::seed_from_u64(seed);
    for u in 0..g.len() {
        let ns = g.neighbors(u);
        assert_eq!(ns.len(), g.degree(u), "degree mismatch at {u}");
        assert!(!ns.contains(&u), "self-neighbour at {u}");
        for &v in &ns {
            assert!(
                g.contains_edge(u, v),
                "listed neighbour not an edge: {u}-{v}"
            );
            assert!(g.contains_edge(v, u), "edge not symmetric: {u}-{v}");
        }
        if g.degree(u) > 0 {
            for _ in 0..8 {
                let v = g.sample_partner(u, &mut rng);
                assert!(ns.contains(&v), "sampled non-neighbour {v} of {u}");
            }
        }
    }
}

/// Checks that the CSR lowering of `g` is *the same graph* (identical
/// neighbour sets) and that its partner sampling is uniform over each
/// neighbour set: an exact-count chi-square test per node against the
/// uniform expectation. Because the draws are seeded, the check is
/// deterministic; the threshold `df + 4·√(2·df) + 12` has negligible mass
/// above it under uniformity but is crossed quickly by any biased sampler.
///
/// Both samplers draw `random_index(degree)` over the same sorted slice
/// order, so CSR-vs-builder agreement is in fact draw-for-draw; the
/// chi-square additionally covers lowerings of the arithmetic families,
/// whose native samplers consume the RNG differently.
fn check_csr_distribution<T: Topology>(g: &T, seed: u64) {
    let csr = Csr::from_topology(g);
    assert_eq!(csr.len(), g.len());
    let mut rng = StdRng::seed_from_u64(seed);
    for u in 0..g.len() {
        let mut expect = g.neighbors(u);
        expect.sort_unstable();
        assert_eq!(csr.neighbors(u), expect, "neighbour set changed at {u}");
    }
    // Chi-square on a handful of nodes (spread across the graph).
    let stride = (g.len() / 5).max(1);
    for u in (0..g.len()).step_by(stride) {
        let d = g.degree(u);
        if d == 0 {
            continue;
        }
        let per_cell = 300usize;
        let trials = per_cell * d;
        let neighbors = csr.neighbors(u);
        let mut counts = vec![0usize; d];
        for _ in 0..trials {
            let v = csr.sample_partner(u, &mut rng);
            let slot = neighbors
                .binary_search(&v)
                .expect("sampled a non-neighbour");
            counts[slot] += 1;
        }
        let expected = per_cell as f64;
        let chi2: f64 = counts
            .iter()
            .map(|&c| {
                let diff = c as f64 - expected;
                diff * diff / expected
            })
            .sum();
        let df = (d - 1).max(1) as f64;
        let threshold = df + 4.0 * (2.0 * df).sqrt() + 12.0;
        assert!(
            chi2 < threshold,
            "chi-square {chi2:.1} over threshold {threshold:.1} at node {u} (degree {d})"
        );
    }
}

proptest! {
    #[test]
    fn complete_contract(n in 2usize..60, seed in 0u64..100) {
        check_contract(&Complete::new(n), seed);
    }

    #[test]
    fn cycle_contract(n in 3usize..60, seed in 0u64..100) {
        check_contract(&Cycle::new(n), seed);
    }

    #[test]
    fn path_contract(n in 2usize..60, seed in 0u64..100) {
        check_contract(&Path::new(n), seed);
    }

    #[test]
    fn star_contract(n in 2usize..60, seed in 0u64..100) {
        check_contract(&Star::new(n), seed);
    }

    #[test]
    fn torus_contract(r in 3usize..8, c in 3usize..8, seed in 0u64..100) {
        check_contract(&Torus2d::new(r, c), seed);
    }

    #[test]
    fn bipartite_contract(l in 1usize..20, r in 1usize..20, seed in 0u64..100) {
        check_contract(&CompleteBipartite::new(l, r), seed);
    }

    #[test]
    fn er_contract(n in 2usize..40, p in 0.0f64..1.0, seed in 0u64..100) {
        let mut rng = StdRng::seed_from_u64(seed);
        let g = erdos_renyi(n, p, &mut rng);
        check_contract(&g, seed.wrapping_add(1));
    }

    #[test]
    fn regular_contract(half_n in 4usize..15, d in 2usize..4, seed in 0u64..50) {
        // Even n ensures n*d is even for any d.
        let n = 2 * half_n;
        let mut rng = StdRng::seed_from_u64(seed);
        let g = random_regular(n, d, &mut rng);
        check_contract(&g, seed.wrapping_add(1));
        for u in 0..n {
            prop_assert_eq!(g.degree(u), d);
        }
    }

    #[test]
    fn adjacency_edge_count(n in 2usize..30, seed in 0u64..100) {
        let mut rng = StdRng::seed_from_u64(seed);
        let g = erdos_renyi(n, 0.5, &mut rng);
        let degree_sum: usize = (0..n).map(|u| g.degree(u)).sum();
        prop_assert_eq!(degree_sum, 2 * g.num_edges());
    }

    #[test]
    fn csr_distribution_complete(n in 2usize..24, seed in 0u64..12) {
        check_csr_distribution(&Complete::new(n), seed);
    }

    #[test]
    fn csr_distribution_cycle(n in 3usize..40, seed in 0u64..12) {
        check_csr_distribution(&Cycle::new(n), seed);
    }

    #[test]
    fn csr_distribution_path(n in 2usize..40, seed in 0u64..12) {
        check_csr_distribution(&Path::new(n), seed);
    }

    #[test]
    fn csr_distribution_star(n in 2usize..24, seed in 0u64..12) {
        check_csr_distribution(&Star::new(n), seed);
    }

    #[test]
    fn csr_distribution_torus(r in 3usize..6, c in 3usize..6, seed in 0u64..12) {
        check_csr_distribution(&Torus2d::new(r, c), seed);
    }

    #[test]
    fn csr_distribution_hypercube(d in 1u32..5, seed in 0u64..12) {
        check_csr_distribution(&Hypercube::new(d), seed);
    }

    #[test]
    fn csr_distribution_bipartite(l in 1usize..10, r in 1usize..10, seed in 0u64..12) {
        check_csr_distribution(&CompleteBipartite::new(l, r), seed);
    }

    #[test]
    fn csr_distribution_er(n in 2usize..24, seed in 0u64..12) {
        let mut rng = StdRng::seed_from_u64(seed);
        let g = erdos_renyi(n, 0.4, &mut rng);
        check_csr_distribution(&g, seed.wrapping_add(1));
    }

    #[test]
    fn csr_distribution_regular(half_n in 4usize..10, d in 2usize..4, seed in 0u64..8) {
        let mut rng = StdRng::seed_from_u64(seed);
        let g = random_regular(2 * half_n, d, &mut rng);
        check_csr_distribution(&g, seed.wrapping_add(1));
    }

    #[test]
    fn csr_distribution_smallworld(n in 9usize..30, seed in 0u64..8) {
        let mut rng = StdRng::seed_from_u64(seed);
        let g = watts_strogatz(n, 2, 0.2, &mut rng);
        check_csr_distribution(&g, seed.wrapping_add(1));
    }

    #[test]
    fn csr_distribution_sbm(a in 3usize..10, b in 3usize..10, seed in 0u64..8) {
        let mut rng = StdRng::seed_from_u64(seed);
        let g = stochastic_block_model(&[a, b], 0.7, 0.2, &mut rng);
        check_csr_distribution(&g, seed.wrapping_add(1));
    }

    #[test]
    fn csr_mono_and_dyn_sampling_agree(n in 3usize..30, seed in 0u64..20) {
        // The monomorphized and object-safe entry points share one
        // implementation; from equal RNG states they return equal draws.
        let mut rng = StdRng::seed_from_u64(seed);
        let g = erdos_renyi(n, 0.6, &mut rng);
        let csr = g.to_csr();
        let mut ra = StdRng::seed_from_u64(seed.wrapping_add(1));
        let mut rb = StdRng::seed_from_u64(seed.wrapping_add(1));
        for u in 0..n {
            if csr.degree(u) > 0 {
                let dyn_rng: &mut dyn Rng = &mut ra;
                prop_assert_eq!(csr.sample_partner(u, dyn_rng), csr.sample_partner_mono(u, &mut rb));
            }
        }
    }

    #[test]
    fn complete_partner_uniformity(n in 3usize..12, seed in 0u64..20) {
        // Chi-squared-ish sanity: every neighbour hit at least once over many draws.
        let g = Complete::new(n);
        let mut rng = StdRng::seed_from_u64(seed);
        let mut hit = vec![false; n];
        for _ in 0..(n * 60) {
            hit[g.sample_partner(0, &mut rng)] = true;
        }
        prop_assert!(!hit[0]);
        prop_assert!(hit[1..].iter().all(|&h| h));
    }
}

#[test]
fn adjacency_from_edges_matches_manual() {
    let g = AdjacencyList::from_edges(4, &[(0, 1), (1, 2), (2, 3), (3, 0)]);
    check_contract(&g, 99);
    assert_eq!(g.num_edges(), 4);
}

/// The relaxed-equivalence turbo partner draw: for every family that
/// overrides it (complete, cycle, torus, CSR) and for the default
/// implementation, each drawn partner must be a genuine neighbour and the
/// draw must be uniform over the neighbour set when fed SplitMix64 words —
/// exactly how the turbo engine feeds it. The chi-square threshold is the
/// same `df + 4·√(2·df) + 12` used for the CSR sampling checks.
#[test]
fn turbo_partner_draws_are_uniform_neighbours() {
    fn check<T: Topology>(g: &T, label: &str) {
        let golden = 0x9E37_79B9_7F4A_7C15u64;
        let mut pos = 0xDEAD_BEEF_u64;
        // Every node (bounded for the big families), all neighbours.
        let stride = (g.len() / 16).max(1);
        for u in (0..g.len()).step_by(stride) {
            let d = g.degree(u);
            if d == 0 {
                continue;
            }
            let neighbors = {
                let mut ns = g.neighbors(u);
                ns.sort_unstable();
                ns
            };
            let per_cell = 250usize;
            let mut counts = vec![0usize; d];
            for _ in 0..per_cell * d {
                pos = pos.wrapping_add(golden);
                let bits = rand::rngs::splitmix64(pos);
                let v = g.sample_partner_turbo(u, bits);
                let slot = neighbors
                    .binary_search(&v)
                    .unwrap_or_else(|_| panic!("{label}: non-neighbour {v} of {u}"));
                counts[slot] += 1;
            }
            let expected = per_cell as f64;
            let chi2: f64 = counts
                .iter()
                .map(|&c| {
                    let diff = c as f64 - expected;
                    diff * diff / expected
                })
                .sum();
            let df = (d - 1).max(1) as f64;
            let threshold = df + 4.0 * (2.0 * df).sqrt() + 12.0;
            assert!(
                chi2 < threshold,
                "{label}: chi-square {chi2:.1} over threshold {threshold:.1} at node {u} (degree {d})"
            );
        }
    }

    // Families with branch-free overrides, including wrap edge cases
    // (nodes on every torus border, ring endpoints).
    check(&Complete::new(37), "complete");
    check(&Cycle::new(3), "cycle-min");
    check(&Cycle::new(101), "cycle");
    check(&Torus2d::new(3, 5), "torus-min");
    check(&Torus2d::new(7, 9), "torus");
    let mut rng = StdRng::seed_from_u64(4);
    check(&erdos_renyi(64, 0.15, &mut rng).to_csr(), "er-csr");
    check(&random_regular(60, 7, &mut rng).to_csr(), "regular-csr");
    // A family without an override exercises the default (CounterRng
    // fallback) path.
    check(&Hypercube::new(5), "hypercube-default");
    check(&Star::new(17), "star-default");
}
