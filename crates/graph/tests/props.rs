//! Property-based tests: every topology obeys the `Topology` contract.

use pp_graph::{
    erdos_renyi, random_regular, AdjacencyList, Complete, CompleteBipartite, Cycle, Path, Star,
    Topology, Torus2d,
};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

/// Checks the core contract on every node of `g`:
/// sampled partners are valid neighbours, degrees match neighbour lists,
/// edges are symmetric, and no node neighbours itself.
fn check_contract<T: Topology>(g: &T, seed: u64) {
    let mut rng = StdRng::seed_from_u64(seed);
    for u in 0..g.len() {
        let ns = g.neighbors(u);
        assert_eq!(ns.len(), g.degree(u), "degree mismatch at {u}");
        assert!(!ns.contains(&u), "self-neighbour at {u}");
        for &v in &ns {
            assert!(
                g.contains_edge(u, v),
                "listed neighbour not an edge: {u}-{v}"
            );
            assert!(g.contains_edge(v, u), "edge not symmetric: {u}-{v}");
        }
        if g.degree(u) > 0 {
            for _ in 0..8 {
                let v = g.sample_partner(u, &mut rng);
                assert!(ns.contains(&v), "sampled non-neighbour {v} of {u}");
            }
        }
    }
}

proptest! {
    #[test]
    fn complete_contract(n in 2usize..60, seed in 0u64..100) {
        check_contract(&Complete::new(n), seed);
    }

    #[test]
    fn cycle_contract(n in 3usize..60, seed in 0u64..100) {
        check_contract(&Cycle::new(n), seed);
    }

    #[test]
    fn path_contract(n in 2usize..60, seed in 0u64..100) {
        check_contract(&Path::new(n), seed);
    }

    #[test]
    fn star_contract(n in 2usize..60, seed in 0u64..100) {
        check_contract(&Star::new(n), seed);
    }

    #[test]
    fn torus_contract(r in 3usize..8, c in 3usize..8, seed in 0u64..100) {
        check_contract(&Torus2d::new(r, c), seed);
    }

    #[test]
    fn bipartite_contract(l in 1usize..20, r in 1usize..20, seed in 0u64..100) {
        check_contract(&CompleteBipartite::new(l, r), seed);
    }

    #[test]
    fn er_contract(n in 2usize..40, p in 0.0f64..1.0, seed in 0u64..100) {
        let mut rng = StdRng::seed_from_u64(seed);
        let g = erdos_renyi(n, p, &mut rng);
        check_contract(&g, seed.wrapping_add(1));
    }

    #[test]
    fn regular_contract(half_n in 4usize..15, d in 2usize..4, seed in 0u64..50) {
        // Even n ensures n*d is even for any d.
        let n = 2 * half_n;
        let mut rng = StdRng::seed_from_u64(seed);
        let g = random_regular(n, d, &mut rng);
        check_contract(&g, seed.wrapping_add(1));
        for u in 0..n {
            prop_assert_eq!(g.degree(u), d);
        }
    }

    #[test]
    fn adjacency_edge_count(n in 2usize..30, seed in 0u64..100) {
        let mut rng = StdRng::seed_from_u64(seed);
        let g = erdos_renyi(n, 0.5, &mut rng);
        let degree_sum: usize = (0..n).map(|u| g.degree(u)).sum();
        prop_assert_eq!(degree_sum, 2 * g.num_edges());
    }

    #[test]
    fn complete_partner_uniformity(n in 3usize..12, seed in 0u64..20) {
        // Chi-squared-ish sanity: every neighbour hit at least once over many draws.
        let g = Complete::new(n);
        let mut rng = StdRng::seed_from_u64(seed);
        let mut hit = vec![false; n];
        for _ in 0..(n * 60) {
            hit[g.sample_partner(0, &mut rng)] = true;
        }
        prop_assert!(!hit[0]);
        prop_assert!(hit[1..].iter().all(|&h| h));
    }
}

#[test]
fn adjacency_from_edges_matches_manual() {
    let g = AdjacencyList::from_edges(4, &[(0, 1), (1, 2), (2, 3), (3, 0)]);
    check_contract(&g, 99);
    assert_eq!(g.num_edges(), 4);
}
