//! Partitioner properties: every family's node set is covered exactly
//! once, and boundary-edge extraction agrees with a brute-force scan.

use pp_graph::{
    erdos_renyi, random_regular, stochastic_block_model, watts_strogatz, Complete,
    CompleteBipartite, Csr, Cycle, Hypercube, Partition, Path, Star, Topology, Torus2d,
};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

/// Checks the exact-cover contract of both layouts over `g`'s node set:
/// every node belongs to exactly one shard, local/global index maps are
/// inverse bijections, member iteration matches `shard_of`, and sizes are
/// balanced to within one.
fn check_exact_cover<T: Topology>(g: &T, shards: usize) {
    let n = g.len();
    let shards = shards.min(n).max(1);
    for p in [
        Partition::contiguous(n, shards),
        Partition::strided(n, shards),
    ] {
        let mut owner = vec![usize::MAX; n];
        for s in 0..p.shards() {
            for u in p.members(s) {
                assert!(u < n, "member {u} out of range");
                assert_eq!(owner[u], usize::MAX, "node {u} covered twice ({p:?})");
                owner[u] = s;
            }
        }
        assert!(
            owner.iter().all(|&s| s != usize::MAX),
            "some node uncovered ({p:?})"
        );
        let mut sizes = vec![0usize; p.shards()];
        for (u, &member_owner) in owner.iter().enumerate() {
            let s = p.shard_of(u);
            assert_eq!(s, member_owner, "shard_of disagrees with members at {u}");
            assert_eq!(
                p.global_index(s, p.local_index(u)),
                u,
                "index maps not inverse"
            );
            sizes[s] += 1;
        }
        let (min, max) = (
            sizes.iter().min().copied().unwrap(),
            sizes.iter().max().copied().unwrap(),
        );
        assert!(max - min <= 1, "unbalanced shard sizes {sizes:?}");
        for (s, &size) in sizes.iter().enumerate() {
            assert_eq!(size, p.size(s), "size() disagrees at shard {s}");
        }
    }
}

/// Checks `boundary_edges` against a brute-force scan over every node
/// pair of the CSR lowering of `g`, for both layouts.
fn check_boundary_extraction<T: Topology>(g: &T, shards: usize) {
    let n = g.len();
    let shards = shards.min(n).max(1);
    let csr = Csr::from_topology(g);
    for p in [
        Partition::contiguous(n, shards),
        Partition::strided(n, shards),
    ] {
        let mut brute = Vec::new();
        for u in 0..n {
            for v in (u + 1)..n {
                if csr.contains_edge(u, v) && p.shard_of(u) != p.shard_of(v) {
                    brute.push((u as u32, v as u32));
                }
            }
        }
        assert_eq!(p.boundary_edges(&csr), brute, "layout {:?}", p.kind());
    }
}

proptest! {
    #[test]
    fn complete_partitions(n in 2usize..40, shards in 1usize..6) {
        let g = Complete::new(n);
        check_exact_cover(&g, shards);
        check_boundary_extraction(&g, shards);
    }

    #[test]
    fn cycle_partitions(n in 3usize..40, shards in 1usize..6) {
        let g = Cycle::new(n);
        check_exact_cover(&g, shards);
        check_boundary_extraction(&g, shards);
    }

    #[test]
    fn path_partitions(n in 2usize..40, shards in 1usize..6) {
        let g = Path::new(n);
        check_exact_cover(&g, shards);
        check_boundary_extraction(&g, shards);
    }

    #[test]
    fn star_partitions(n in 2usize..40, shards in 1usize..6) {
        let g = Star::new(n);
        check_exact_cover(&g, shards);
        check_boundary_extraction(&g, shards);
    }

    #[test]
    fn bipartite_partitions(l in 1usize..12, r in 1usize..12, shards in 1usize..6) {
        let g = CompleteBipartite::new(l, r);
        check_exact_cover(&g, shards);
        check_boundary_extraction(&g, shards);
    }

    #[test]
    fn torus_partitions(rows in 3usize..7, cols in 3usize..7, shards in 1usize..6) {
        let g = Torus2d::new(rows, cols);
        check_exact_cover(&g, shards);
        check_boundary_extraction(&g, shards);
    }

    #[test]
    fn hypercube_partitions(dim in 1u32..5, shards in 1usize..6) {
        let g = Hypercube::new(dim);
        check_exact_cover(&g, shards);
        check_boundary_extraction(&g, shards);
    }

    #[test]
    fn erdos_renyi_partitions(n in 2usize..30, p in 0.0f64..1.0, shards in 1usize..6, seed in 0u64..30) {
        let mut rng = StdRng::seed_from_u64(seed);
        let g = erdos_renyi(n, p, &mut rng);
        check_exact_cover(&g, shards);
        check_boundary_extraction(&g, shards);
    }

    #[test]
    fn random_regular_partitions(half_n in 3usize..12, d in 2usize..4, shards in 1usize..6, seed in 0u64..20) {
        let mut rng = StdRng::seed_from_u64(seed);
        let g = random_regular(2 * half_n, d, &mut rng);
        check_exact_cover(&g, shards);
        check_boundary_extraction(&g, shards);
    }

    #[test]
    fn watts_strogatz_partitions(n in 9usize..30, shards in 1usize..6, seed in 0u64..20) {
        let mut rng = StdRng::seed_from_u64(seed);
        let g = watts_strogatz(n, 2, 0.2, &mut rng);
        check_exact_cover(&g, shards);
        check_boundary_extraction(&g, shards);
    }

    #[test]
    fn sbm_partitions(a in 3usize..10, b in 3usize..10, shards in 1usize..6, seed in 0u64..20) {
        let mut rng = StdRng::seed_from_u64(seed);
        let g = stochastic_block_model(&[a, b], 0.7, 0.2, &mut rng);
        check_exact_cover(&g, shards);
        check_boundary_extraction(&g, shards);
    }
}

#[test]
fn contiguous_cuts_beat_strided_on_the_ring() {
    // The reason the engine partitions geometric families contiguously:
    // a 60-cycle in 4 contiguous shards cuts 4 edges; strided cuts all 60.
    let csr = Csr::from_topology(&Cycle::new(60));
    let contiguous = Partition::contiguous(60, 4);
    let strided = Partition::strided(60, 4);
    assert_eq!(contiguous.boundary_edges(&csr).len(), 4);
    assert_eq!(strided.boundary_edges(&csr).len(), 60);
}
