//! Graph algorithms over [`Topology`] values.

use crate::Topology;

/// Returns `true` if the topology is connected (every node reachable from
/// node 0 by breadth-first search). The empty graph is considered connected.
///
/// Diversification needs a connected interaction graph: on a disconnected
/// graph the components evolve independently and the global fair-share
/// statement cannot hold, so experiment setups assert connectivity first.
///
/// # Examples
///
/// ```
/// use pp_graph::{is_connected, AdjacencyList, Complete};
///
/// assert!(is_connected(&Complete::new(5)));
/// let split = AdjacencyList::from_edges(4, &[(0, 1), (2, 3)]);
/// assert!(!is_connected(&split));
/// ```
pub fn is_connected<T: Topology + ?Sized>(g: &T) -> bool {
    let n = g.len();
    if n == 0 {
        return true;
    }
    let mut seen = vec![false; n];
    let mut queue = std::collections::VecDeque::new();
    seen[0] = true;
    queue.push_back(0);
    let mut visited = 1;
    while let Some(u) = queue.pop_front() {
        for v in g.neighbors(u) {
            if !seen[v] {
                seen[v] = true;
                visited += 1;
                queue.push_back(v);
            }
        }
    }
    visited == n
}

/// Breadth-first distances from `src` to every node; `usize::MAX` marks
/// unreachable nodes.
///
/// # Panics
///
/// Panics if `src >= g.len()`.
pub fn bfs_distances<T: Topology + ?Sized>(g: &T, src: usize) -> Vec<usize> {
    assert!(src < g.len(), "source {src} out of range");
    let mut dist = vec![usize::MAX; g.len()];
    let mut queue = std::collections::VecDeque::new();
    dist[src] = 0;
    queue.push_back(src);
    while let Some(u) = queue.pop_front() {
        for v in g.neighbors(u) {
            if dist[v] == usize::MAX {
                dist[v] = dist[u] + 1;
                queue.push_back(v);
            }
        }
    }
    dist
}

/// The diameter (longest shortest path) of a connected topology, or `None`
/// if the topology is disconnected. `O(n · m)`; intended for small graphs.
pub fn diameter<T: Topology + ?Sized>(g: &T) -> Option<usize> {
    let mut best = 0;
    for u in 0..g.len() {
        let d = bfs_distances(g, u);
        let m = *d.iter().max()?;
        if m == usize::MAX {
            return None;
        }
        best = best.max(m);
    }
    Some(best)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{AdjacencyList, Complete, Cycle, Path, Star, Torus2d};

    #[test]
    fn standard_topologies_connected() {
        assert!(is_connected(&Complete::new(6)));
        assert!(is_connected(&Cycle::new(6)));
        assert!(is_connected(&Path::new(6)));
        assert!(is_connected(&Star::new(6)));
        assert!(is_connected(&Torus2d::new(3, 4)));
    }

    #[test]
    fn detects_disconnection() {
        let g = AdjacencyList::from_edges(5, &[(0, 1), (1, 2), (3, 4)]);
        assert!(!is_connected(&g));
    }

    #[test]
    fn bfs_on_path() {
        let g = Path::new(5);
        assert_eq!(bfs_distances(&g, 0), vec![0, 1, 2, 3, 4]);
        assert_eq!(bfs_distances(&g, 2), vec![2, 1, 0, 1, 2]);
    }

    #[test]
    fn diameters() {
        assert_eq!(diameter(&Complete::new(8)), Some(1));
        assert_eq!(diameter(&Cycle::new(8)), Some(4));
        assert_eq!(diameter(&Path::new(5)), Some(4));
        assert_eq!(diameter(&Star::new(5)), Some(2));
    }

    #[test]
    fn disconnected_diameter_none() {
        let g = AdjacencyList::from_edges(4, &[(0, 1), (2, 3)]);
        assert_eq!(diameter(&g), None);
    }
}
