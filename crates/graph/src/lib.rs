//! Interaction topologies for population protocols.
//!
//! The paper analyses the Diversification protocol on the **complete graph**
//! ([`Complete`]), where the scheduled agent samples a uniformly random
//! *other* agent. Its future-work section asks how the protocol behaves on
//! other topologies; this crate supplies those too: [`Cycle`], [`Path`],
//! [`Torus2d`], [`Star`], [`CompleteBipartite`], and random graphs
//! ([`erdos_renyi`], [`random_regular`], [`stochastic_block_model`]) backed
//! by an [`AdjacencyList`].
//!
//! All topologies implement [`Topology`], whose single hot-path operation is
//! [`Topology::sample_partner`]: draw a uniformly random neighbour of the
//! scheduled agent. For the complete graph this is `O(1)` without storing
//! any edges, which is what lets the engine simulate millions of agents.
//!
//! # Examples
//!
//! ```
//! use pp_graph::{Complete, Topology};
//! use rand::{rngs::StdRng, SeedableRng};
//!
//! let g = Complete::new(100);
//! let mut rng = StdRng::seed_from_u64(7);
//! let v = g.sample_partner(3, &mut rng);
//! assert_ne!(v, 3);
//! assert!(v < 100);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod adjacency;
pub mod bipartite;
pub mod complete;
pub mod connectivity;
pub mod csr;
pub mod hypercube;
pub mod partition;
pub mod random;
pub mod ring;
pub mod smallworld;
pub mod star;
pub mod torus;

pub use adjacency::AdjacencyList;
pub use bipartite::CompleteBipartite;
pub use complete::Complete;
pub use connectivity::is_connected;
pub use csr::Csr;
pub use hypercube::Hypercube;
pub use partition::{Partition, PartitionKind};
pub use random::{erdos_renyi, random_regular, stochastic_block_model};
pub use ring::{Cycle, Path};
pub use smallworld::watts_strogatz;
pub use star::Star;
pub use torus::Torus2d;

use rand::Rng;

/// An undirected interaction topology on nodes `0..len()`.
///
/// A population protocol schedules an agent `u` and has it observe a
/// uniformly random neighbour; [`sample_partner`](Topology::sample_partner)
/// is that draw. Implementations must guarantee the returned node is a
/// neighbour of `u` chosen uniformly among `u`'s neighbours.
///
/// The trait is object-safe so heterogeneous experiment sweeps can store
/// `Box<dyn Topology>`.
pub trait Topology: std::fmt::Debug + Send + Sync {
    /// Number of nodes.
    fn len(&self) -> usize;

    /// Returns `true` if the topology has no nodes.
    fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Degree of node `u`.
    ///
    /// # Panics
    ///
    /// Panics if `u >= len()`.
    fn degree(&self, u: usize) -> usize;

    /// Draws a uniformly random neighbour of `u`.
    ///
    /// # Panics
    ///
    /// Panics if `u >= len()` or `u` has no neighbours.
    fn sample_partner(&self, u: usize, rng: &mut dyn Rng) -> usize;

    /// Monomorphized partner draw: identical distribution (and identical
    /// RNG consumption) to [`sample_partner`](Topology::sample_partner), but
    /// generic over the RNG so a concrete topology compiles to a direct,
    /// inlinable call chain with no `dyn` dispatch anywhere — the hot-path
    /// entry point of `pp_engine`'s packed batch simulator.
    ///
    /// The default delegates to the object-safe method (coercing `&mut R`
    /// to `&mut dyn Rng`); every concrete topology in this crate overrides
    /// it with a shared inline implementation. Excluded from vtables via
    /// `where Self: Sized`, so the trait stays object-safe.
    ///
    /// # Panics
    ///
    /// Panics if `u >= len()` or `u` has no neighbours.
    fn sample_partner_mono<R: Rng>(&self, u: usize, rng: &mut R) -> usize
    where
        Self: Sized,
    {
        self.sample_partner(u, rng)
    }

    /// Relaxed-equivalence partner draw for the turbo engine: picks a
    /// uniform neighbour of `u` from the 64 uniform random bits in `bits`
    /// instead of a sequential RNG stream.
    ///
    /// Unlike [`sample_partner_mono`](Topology::sample_partner_mono), this
    /// draw is **not** required to consume randomness like the reference
    /// engine — only to produce the right distribution (to within bias far
    /// below statistical resolution, e.g. a multiply-shift `O(d/2⁶⁴)`
    /// remainder instead of Lemire rejection). That freedom lets the
    /// structured topologies implement it branch-free and division-free:
    /// the turbo engine's batch pass has no serial RNG chain to hide a
    /// mispredicted branch or a 30-cycle hardware divide behind, so on
    /// that path the classic arithmetic samplers (`% n`, 50/50 branches)
    /// dominate the step cost. Overrides use the **high** bits of `bits`
    /// first; the engine hands the low 32 bits to the protocol transition,
    /// and the documented correlation between fields is `O(d/2³²)` — far
    /// below what the statistical-equivalence harness can resolve.
    ///
    /// The default delegates to `sample_partner_mono` over a one-shot
    /// [`CounterRng`](rand::rngs::CounterRng) seeded from `bits`, which is
    /// correct (if slower) for every topology.
    ///
    /// # Panics
    ///
    /// Panics if `u >= len()` or `u` has no neighbours.
    #[inline]
    fn sample_partner_turbo(&self, u: usize, bits: u64) -> usize
    where
        Self: Sized,
    {
        self.sample_partner_mono(u, &mut rand::rngs::CounterRng::from_state(bits))
    }

    /// Lane-batched form of [`sample_partner_turbo`](Topology::sample_partner_turbo):
    /// one draw per word of `bits`, all for the same scheduled agent `u`,
    /// written to `out`. Each `out[l]` must equal
    /// `sample_partner_turbo(u, bits[l])` exactly — this is a fast path,
    /// not a different distribution — so the vec engine can batch draws
    /// without perturbing any lane's trajectory.
    ///
    /// The point of the hook is that `u` is *shared*: a structured
    /// topology can hoist everything that depends only on `u` (the
    /// torus's `u mod cols` and its four neighbour candidates, say) out
    /// of the lane loop once, leaving per-lane work small and
    /// branch-free enough to vectorize. The default simply loops the
    /// scalar draw.
    ///
    /// # Panics
    ///
    /// Panics if `u >= len()`, `u` has no neighbours, or
    /// `bits.len() != out.len()`.
    #[inline]
    fn sample_partners_turbo(&self, u: usize, bits: &[u64], out: &mut [usize])
    where
        Self: Sized,
    {
        assert_eq!(bits.len(), out.len());
        for (o, &b) in out.iter_mut().zip(bits) {
            *o = self.sample_partner_turbo(u, b);
        }
    }

    /// Returns a same-family topology resized to `new_len` nodes, or `None`
    /// if the family has no canonical resize (a sampled graph, a torus whose
    /// side lengths are fixed, …).
    ///
    /// This is the hook the engine tiers use to implement the adversary's
    /// structural shocks (add/remove agents) generically: growing a
    /// population on `Complete` yields `Complete::new(new_len)`, while a
    /// `Csr` sample returns `None` and the engine refuses the shock with a
    /// clear panic instead of silently simulating on a stale edge set.
    /// Excluded from vtables via `where Self: Sized`; boxed topologies
    /// therefore report `None` (experiments that apply resizing shocks use
    /// concrete topology types).
    fn resized(&self, new_len: usize) -> Option<Self>
    where
        Self: Sized,
    {
        let _ = new_len;
        None
    }

    /// The node-partition layout this topology prefers when a partitioned
    /// engine splits its node set across shards (see
    /// [`Partition`]).
    ///
    /// The default is [`PartitionKind::Contiguous`], which cuts few edges
    /// wherever the node numbering is geometric (rings, row-major tori,
    /// CSR lowerings of them). Index-symmetric families whose cut cannot
    /// be reduced by any layout — the complete graph, the complete
    /// bipartite graph — override this to
    /// [`PartitionKind::Strided`] so each shard's sub-population stays
    /// representative of index-patterned initial configurations.
    fn preferred_partition(&self) -> PartitionKind {
        PartitionKind::Contiguous
    }

    /// Returns `true` if `{u, v}` is an edge.
    ///
    /// # Panics
    ///
    /// Panics if `u >= len()` or `v >= len()`.
    fn contains_edge(&self, u: usize, v: usize) -> bool;

    /// The neighbours of `u`, in unspecified order. `O(degree)` allocation;
    /// intended for tests and graph algorithms, not the simulation hot path.
    ///
    /// # Panics
    ///
    /// Panics if `u >= len()`.
    fn neighbors(&self, u: usize) -> Vec<usize>;

    /// A short human-readable name for experiment tables (e.g. `complete`).
    fn name(&self) -> String;
}

impl<T: Topology + ?Sized> Topology for Box<T> {
    fn len(&self) -> usize {
        (**self).len()
    }

    fn degree(&self, u: usize) -> usize {
        (**self).degree(u)
    }

    fn sample_partner(&self, u: usize, rng: &mut dyn Rng) -> usize {
        (**self).sample_partner(u, rng)
    }

    fn preferred_partition(&self) -> PartitionKind {
        (**self).preferred_partition()
    }

    fn contains_edge(&self, u: usize, v: usize) -> bool {
        (**self).contains_edge(u, v)
    }

    fn neighbors(&self, u: usize) -> Vec<usize> {
        (**self).neighbors(u)
    }

    fn name(&self) -> String {
        (**self).name()
    }
}

/// Asserts `u` is a valid node index for a topology of size `n`.
pub(crate) fn check_node(u: usize, n: usize) {
    assert!(
        u < n,
        "node index {u} out of range for topology of {n} nodes"
    );
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn trait_is_object_safe() {
        let g: Box<dyn Topology> = Box::new(Complete::new(4));
        assert_eq!(g.len(), 4);
        assert!(!g.is_empty());
    }
}
