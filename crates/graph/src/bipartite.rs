//! The complete bipartite graph.

use crate::{check_node, Topology};
use rand::{Rng, RngExt};

/// The complete bipartite graph `K_{l,r}`: nodes `0..l` on the left side,
/// `l..l+r` on the right; every left node neighbours every right node.
///
/// # Examples
///
/// ```
/// use pp_graph::{CompleteBipartite, Topology};
///
/// let g = CompleteBipartite::new(2, 3);
/// assert_eq!(g.len(), 5);
/// assert_eq!(g.degree(0), 3);
/// assert_eq!(g.degree(4), 2);
/// assert!(g.contains_edge(1, 3));
/// assert!(!g.contains_edge(0, 1));
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct CompleteBipartite {
    left: usize,
    right: usize,
}

impl CompleteBipartite {
    /// Creates `K_{left,right}`.
    ///
    /// # Panics
    ///
    /// Panics if either side is empty.
    pub fn new(left: usize, right: usize) -> Self {
        assert!(left >= 1 && right >= 1, "both sides must be non-empty");
        CompleteBipartite { left, right }
    }

    /// Returns `true` if node `u` is on the left side.
    pub fn is_left(&self, u: usize) -> bool {
        check_node(u, self.len());
        u < self.left
    }

    #[inline]
    fn sample_impl<R: Rng>(&self, u: usize, rng: &mut R) -> usize {
        check_node(u, self.len());
        if u < self.left {
            self.left + rng.random_index(self.right)
        } else {
            rng.random_index(self.left)
        }
    }
}

impl Topology for CompleteBipartite {
    fn len(&self) -> usize {
        self.left + self.right
    }

    fn degree(&self, u: usize) -> usize {
        check_node(u, self.len());
        if u < self.left {
            self.right
        } else {
            self.left
        }
    }

    fn sample_partner(&self, u: usize, mut rng: &mut dyn Rng) -> usize {
        self.sample_impl(u, &mut rng)
    }

    fn sample_partner_mono<R: Rng>(&self, u: usize, rng: &mut R) -> usize {
        self.sample_impl(u, rng)
    }

    fn preferred_partition(&self) -> crate::PartitionKind {
        // Nodes are numbered side-by-side, so contiguous ranges would put
        // whole sides into single shards (every edge crosses sides);
        // striding spreads both sides over every shard instead.
        crate::PartitionKind::Strided
    }

    fn contains_edge(&self, u: usize, v: usize) -> bool {
        check_node(u, self.len());
        check_node(v, self.len());
        (u < self.left) != (v < self.left)
    }

    fn neighbors(&self, u: usize) -> Vec<usize> {
        check_node(u, self.len());
        if u < self.left {
            (self.left..self.len()).collect()
        } else {
            (0..self.left).collect()
        }
    }

    fn name(&self) -> String {
        format!("bipartite{}x{}", self.left, self.right)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn partners_cross_sides() {
        let g = CompleteBipartite::new(3, 4);
        let mut rng = StdRng::seed_from_u64(8);
        for _ in 0..100 {
            let v = g.sample_partner(1, &mut rng);
            assert!(!g.is_left(v));
            let w = g.sample_partner(5, &mut rng);
            assert!(g.is_left(w));
        }
    }

    #[test]
    fn neighbors_are_other_side() {
        let g = CompleteBipartite::new(2, 2);
        assert_eq!(g.neighbors(0), vec![2, 3]);
        assert_eq!(g.neighbors(3), vec![0, 1]);
    }

    #[test]
    #[should_panic(expected = "non-empty")]
    fn rejects_empty_side() {
        CompleteBipartite::new(0, 3);
    }
}
