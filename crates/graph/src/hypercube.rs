//! The boolean hypercube.

use crate::{check_node, Topology};
use rand::{Rng, RngExt};

/// The `d`-dimensional boolean hypercube `Q_d`: `2^d` nodes, each adjacent
/// to the `d` nodes obtained by flipping one bit of its label.
///
/// A classic sparse expander-like topology (`O(log n)` degree and
/// diameter) — the natural midpoint between the complete graph and the
/// cycle for the future-work topology experiments.
///
/// # Examples
///
/// ```
/// use pp_graph::{Hypercube, Topology};
///
/// let g = Hypercube::new(4);
/// assert_eq!(g.len(), 16);
/// assert_eq!(g.degree(0), 4);
/// assert!(g.contains_edge(0b0000, 0b0100));
/// assert!(!g.contains_edge(0b0000, 0b0110));
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Hypercube {
    dim: u32,
}

impl Hypercube {
    /// Creates the `dim`-dimensional hypercube.
    ///
    /// # Panics
    ///
    /// Panics if `dim` is 0 or above 30 (2³⁰ nodes is past simulation scale).
    pub fn new(dim: u32) -> Self {
        assert!(dim >= 1, "hypercube needs dimension >= 1");
        assert!(dim <= 30, "dimension {dim} too large");
        Hypercube { dim }
    }

    /// The dimension `d` (= degree of every node).
    pub fn dim(&self) -> u32 {
        self.dim
    }

    #[inline]
    fn sample_impl<R: Rng>(&self, u: usize, rng: &mut R) -> usize {
        check_node(u, self.len());
        let bit = rng.random_index(self.dim as usize);
        u ^ (1usize << bit)
    }
}

impl Topology for Hypercube {
    fn len(&self) -> usize {
        1usize << self.dim
    }

    fn degree(&self, u: usize) -> usize {
        check_node(u, self.len());
        self.dim as usize
    }

    fn sample_partner(&self, u: usize, mut rng: &mut dyn Rng) -> usize {
        self.sample_impl(u, &mut rng)
    }

    fn sample_partner_mono<R: Rng>(&self, u: usize, rng: &mut R) -> usize {
        self.sample_impl(u, rng)
    }

    fn contains_edge(&self, u: usize, v: usize) -> bool {
        check_node(u, self.len());
        check_node(v, self.len());
        (u ^ v).count_ones() == 1
    }

    fn neighbors(&self, u: usize) -> Vec<usize> {
        check_node(u, self.len());
        (0..self.dim).map(|b| u ^ (1usize << b)).collect()
    }

    fn name(&self) -> String {
        format!("hypercube(d={})", self.dim)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::connectivity::{diameter, is_connected};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn size_and_degree() {
        let g = Hypercube::new(5);
        assert_eq!(g.len(), 32);
        assert_eq!(g.dim(), 5);
        for u in 0..32 {
            assert_eq!(g.degree(u), 5);
        }
    }

    #[test]
    fn connected_with_diameter_d() {
        let g = Hypercube::new(4);
        assert!(is_connected(&g));
        assert_eq!(diameter(&g), Some(4));
    }

    #[test]
    fn sampling_flips_one_bit() {
        let g = Hypercube::new(6);
        let mut rng = StdRng::seed_from_u64(3);
        for _ in 0..200 {
            let v = g.sample_partner(0b101010, &mut rng);
            assert_eq!((v ^ 0b101010).count_ones(), 1);
        }
    }

    #[test]
    fn neighbors_are_exactly_bit_flips() {
        let g = Hypercube::new(3);
        let mut ns = g.neighbors(0b011);
        ns.sort_unstable();
        assert_eq!(ns, vec![0b001, 0b010, 0b111]);
    }

    #[test]
    #[should_panic(expected = "dimension >= 1")]
    fn rejects_dim_zero() {
        Hypercube::new(0);
    }
}
