//! Random-graph constructors: Erdős–Rényi, random-regular, stochastic block
//! model.

use crate::AdjacencyList;
use rand::{Rng, RngExt};

/// Samples an Erdős–Rényi graph `G(n, p)`: each of the `n(n−1)/2` possible
/// edges is present independently with probability `p`.
///
/// Sampling walks the edge index space with geometric skip lengths
/// (Batagelj–Brandes), so the cost is `O(n + m)` — one RNG draw per
/// *present* edge rather than one per *possible* edge. Sparse graphs at
/// `n = 10⁵⁺` (the scale of the fast-path topology experiments) generate in
/// milliseconds where the naive `O(n²)` scan needs minutes.
///
/// # Examples
///
/// ```
/// use pp_graph::{erdos_renyi, Topology};
/// use rand::{rngs::StdRng, SeedableRng};
///
/// let mut rng = StdRng::seed_from_u64(1);
/// let g = erdos_renyi(50, 0.2, &mut rng);
/// assert_eq!(g.len(), 50);
/// ```
///
/// # Panics
///
/// Panics if `n < 2` or `p` is outside `[0, 1]`.
pub fn erdos_renyi(n: usize, p: f64, rng: &mut dyn Rng) -> AdjacencyList {
    assert!(n >= 2, "G(n, p) needs n >= 2, got {n}");
    assert!(
        (0.0..=1.0).contains(&p),
        "edge probability must be in [0, 1], got {p}"
    );
    let mut edges = Vec::new();
    if p >= 1.0 {
        for u in 0..n {
            for v in (u + 1)..n {
                edges.push((u, v));
            }
        }
    } else if p > 0.0 {
        // Batagelj–Brandes: enumerate the lower triangle row-major and jump
        // ahead by Geometric(p) between present edges.
        let log_q = (1.0 - p).ln();
        let max_skip = (n * n) as f64;
        let mut row: usize = 1;
        let mut col: i64 = -1;
        while row < n {
            let r = rng.random_unit();
            let skip = ((1.0 - r).ln() / log_q).floor().min(max_skip);
            col += 1 + skip as i64;
            while row < n && col >= row as i64 {
                col -= row as i64;
                row += 1;
            }
            if row < n {
                edges.push((col as usize, row));
            }
        }
    }
    AdjacencyList::from_edges(n, &edges).with_name(format!("er(p={p})"))
}

/// Samples a random `d`-regular graph on `n` nodes via the configuration
/// model with edge-swap repair: pair up the `n·d` half-edge stubs uniformly
/// at random, then repeatedly resolve each self-loop or duplicate edge by a
/// random 2-swap with another pair (which preserves all degrees). Rejection
/// of whole pairings would need `exp(Θ(d²))` attempts; swap repair converges
/// in a handful of rounds even for dense degrees.
///
/// # Examples
///
/// ```
/// use pp_graph::{random_regular, Topology};
/// use rand::{rngs::StdRng, SeedableRng};
///
/// let mut rng = StdRng::seed_from_u64(2);
/// let g = random_regular(20, 4, &mut rng);
/// assert!((0..20).all(|u| g.degree(u) == 4));
/// ```
///
/// # Panics
///
/// Panics if `n·d` is odd, `d == 0`, `d >= n`, or the repair loop fails to
/// produce a simple graph within 10 000 rounds (practically impossible for
/// `d < n/4`).
pub fn random_regular(n: usize, d: usize, rng: &mut dyn Rng) -> AdjacencyList {
    assert!(d >= 1, "degree must be positive");
    assert!(d < n, "degree {d} must be below n = {n}");
    assert!(
        (n * d).is_multiple_of(2),
        "n*d must be even, got n={n}, d={d}"
    );
    // Stub list: node u appears d times; Fisher–Yates shuffle, pair up.
    let mut stubs: Vec<usize> = (0..n).flat_map(|u| std::iter::repeat_n(u, d)).collect();
    for i in (1..stubs.len()).rev() {
        let j = rng.random_range(0..=i);
        stubs.swap(i, j);
    }
    let mut pairs: Vec<(usize, usize)> = stubs
        .chunks_exact(2)
        .map(|pair| (pair[0], pair[1]))
        .collect();

    const MAX_REPAIR_ROUNDS: usize = 10_000;
    for _ in 0..MAX_REPAIR_ROUNDS {
        let mut seen = std::collections::HashSet::with_capacity(pairs.len());
        let bad: Vec<usize> = pairs
            .iter()
            .enumerate()
            .filter_map(|(idx, &(u, v))| {
                if u == v || !seen.insert((u.min(v), u.max(v))) {
                    Some(idx)
                } else {
                    None
                }
            })
            .collect();
        if bad.is_empty() {
            return AdjacencyList::from_edges(n, &pairs).with_name(format!("regular(d={d})"));
        }
        for idx in bad {
            let other = rng.random_range(0..pairs.len());
            if other == idx {
                continue;
            }
            // Degree-preserving 2-swap: (a,b),(c,e) → (a,e),(c,b).
            let (a, b) = pairs[idx];
            let (c, e) = pairs[other];
            pairs[idx] = (a, e);
            pairs[other] = (c, b);
        }
    }
    panic!("random_regular: repair failed for n={n}, d={d} after {MAX_REPAIR_ROUNDS} rounds");
}

/// Samples a two-community stochastic block model: `sizes.len()` blocks,
/// within-block edges with probability `p_in`, cross-block edges with
/// probability `p_out`.
///
/// The paper's related work uses this model for community detection via
/// population protocols; here it serves as a clustered topology stressor.
///
/// # Examples
///
/// ```
/// use pp_graph::{stochastic_block_model, Topology};
/// use rand::{rngs::StdRng, SeedableRng};
///
/// let mut rng = StdRng::seed_from_u64(3);
/// let g = stochastic_block_model(&[25, 25], 0.5, 0.05, &mut rng);
/// assert_eq!(g.len(), 50);
/// ```
///
/// # Panics
///
/// Panics if any block is empty, fewer than one block is given, or either
/// probability is outside `[0, 1]`.
pub fn stochastic_block_model(
    sizes: &[usize],
    p_in: f64,
    p_out: f64,
    rng: &mut dyn Rng,
) -> AdjacencyList {
    assert!(!sizes.is_empty(), "need at least one block");
    assert!(sizes.iter().all(|&s| s > 0), "blocks must be non-empty");
    for p in [p_in, p_out] {
        assert!(
            (0.0..=1.0).contains(&p),
            "probability must be in [0, 1], got {p}"
        );
    }
    let n: usize = sizes.iter().sum();
    let mut block_of = Vec::with_capacity(n);
    for (b, &s) in sizes.iter().enumerate() {
        block_of.extend(std::iter::repeat_n(b, s));
    }
    let mut edges = Vec::new();
    for u in 0..n {
        for v in (u + 1)..n {
            let p = if block_of[u] == block_of[v] {
                p_in
            } else {
                p_out
            };
            if rng.random_bool(p) {
                edges.push((u, v));
            }
        }
    }
    AdjacencyList::from_edges(n, &edges).with_name(format!("sbm({} blocks)", sizes.len()))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Topology;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn er_density_near_p() {
        let mut rng = StdRng::seed_from_u64(1);
        let n = 100;
        let p = 0.3;
        let g = erdos_renyi(n, p, &mut rng);
        let possible = n * (n - 1) / 2;
        let density = g.num_edges() as f64 / possible as f64;
        assert!((density - p).abs() < 0.05, "density {density}");
    }

    #[test]
    fn er_extremes() {
        let mut rng = StdRng::seed_from_u64(2);
        assert_eq!(erdos_renyi(10, 0.0, &mut rng).num_edges(), 0);
        assert_eq!(erdos_renyi(10, 1.0, &mut rng).num_edges(), 45);
    }

    #[test]
    fn regular_is_regular() {
        let mut rng = StdRng::seed_from_u64(3);
        for d in [2, 3, 4] {
            let g = random_regular(30, d, &mut rng);
            for u in 0..30 {
                assert_eq!(g.degree(u), d, "d={d}, u={u}");
            }
        }
    }

    #[test]
    #[should_panic(expected = "even")]
    fn regular_rejects_odd_product() {
        let mut rng = StdRng::seed_from_u64(4);
        random_regular(5, 3, &mut rng);
    }

    #[test]
    fn sbm_in_block_denser() {
        let mut rng = StdRng::seed_from_u64(5);
        let g = stochastic_block_model(&[40, 40], 0.5, 0.02, &mut rng);
        let mut within = 0usize;
        let mut across = 0usize;
        for u in 0..80 {
            for v in g.neighbors(u) {
                if v > u {
                    if (u < 40) == (v < 40) {
                        within += 1;
                    } else {
                        across += 1;
                    }
                }
            }
        }
        assert!(within > 4 * across, "within={within} across={across}");
    }

    #[test]
    fn deterministic_under_seed() {
        let a = erdos_renyi(20, 0.4, &mut StdRng::seed_from_u64(9));
        let b = erdos_renyi(20, 0.4, &mut StdRng::seed_from_u64(9));
        assert_eq!(a, b);
    }
}
