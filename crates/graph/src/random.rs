//! Random-graph constructors: Erdős–Rényi, random-regular, stochastic block
//! model.

use crate::AdjacencyList;
use rand::{Rng, RngExt};

/// Samples an Erdős–Rényi graph `G(n, p)`: each of the `n(n−1)/2` possible
/// edges is present independently with probability `p`.
///
/// Sampling walks the edge index space with geometric skip lengths
/// (Batagelj–Brandes), so the cost is `O(n + m)` — one RNG draw per
/// *present* edge rather than one per *possible* edge. Sparse graphs at
/// `n = 10⁵⁺` (the scale of the fast-path topology experiments) generate in
/// milliseconds where the naive `O(n²)` scan needs minutes.
///
/// # Examples
///
/// ```
/// use pp_graph::{erdos_renyi, Topology};
/// use rand::{rngs::StdRng, SeedableRng};
///
/// let mut rng = StdRng::seed_from_u64(1);
/// let g = erdos_renyi(50, 0.2, &mut rng);
/// assert_eq!(g.len(), 50);
/// ```
///
/// # Panics
///
/// Panics if `n < 2` or `p` is outside `[0, 1]`.
pub fn erdos_renyi(n: usize, p: f64, rng: &mut dyn Rng) -> AdjacencyList {
    assert!(n >= 2, "G(n, p) needs n >= 2, got {n}");
    assert!(
        (0.0..=1.0).contains(&p),
        "edge probability must be in [0, 1], got {p}"
    );
    let mut edges = Vec::new();
    if p >= 1.0 {
        for u in 0..n {
            for v in (u + 1)..n {
                edges.push((u, v));
            }
        }
    } else if p > 0.0 {
        // Batagelj–Brandes: enumerate the lower triangle row-major and jump
        // ahead by Geometric(p) between present edges.
        let log_q = (1.0 - p).ln();
        let max_skip = (n * n) as f64;
        let mut row: usize = 1;
        let mut col: i64 = -1;
        while row < n {
            let r = rng.random_unit();
            let skip = ((1.0 - r).ln() / log_q).floor().min(max_skip);
            col += 1 + skip as i64;
            while row < n && col >= row as i64 {
                col -= row as i64;
                row += 1;
            }
            if row < n {
                edges.push((col as usize, row));
            }
        }
    }
    AdjacencyList::from_edges(n, &edges).with_name(format!("er(p={p})"))
}

/// Samples a random `d`-regular graph on `n` nodes via the configuration
/// model with edge-swap repair: pair up the `n·d` half-edge stubs uniformly
/// at random, then repeatedly resolve each self-loop or duplicate edge by a
/// random 2-swap with another pair (which preserves all degrees). Rejection
/// of whole pairings would need `exp(Θ(d²))` attempts; swap repair converges
/// in a handful of rounds even for dense degrees.
///
/// # Examples
///
/// ```
/// use pp_graph::{random_regular, Topology};
/// use rand::{rngs::StdRng, SeedableRng};
///
/// let mut rng = StdRng::seed_from_u64(2);
/// let g = random_regular(20, 4, &mut rng);
/// assert!((0..20).all(|u| g.degree(u) == 4));
/// ```
///
/// # Panics
///
/// Panics if `n·d` is odd, `d == 0`, `d >= n`, or the repair loop fails to
/// produce a simple graph within 10 000 rounds (practically impossible for
/// `d < n/4`).
pub fn random_regular(n: usize, d: usize, rng: &mut dyn Rng) -> AdjacencyList {
    assert!(d >= 1, "degree must be positive");
    assert!(d < n, "degree {d} must be below n = {n}");
    assert!(
        (n * d).is_multiple_of(2),
        "n*d must be even, got n={n}, d={d}"
    );
    // Stub list: node u appears d times; Fisher–Yates shuffle, pair up.
    let mut stubs: Vec<usize> = (0..n).flat_map(|u| std::iter::repeat_n(u, d)).collect();
    for i in (1..stubs.len()).rev() {
        let j = rng.random_range(0..=i);
        stubs.swap(i, j);
    }
    let mut pairs: Vec<(usize, usize)> = stubs
        .chunks_exact(2)
        .map(|pair| (pair[0], pair[1]))
        .collect();

    const MAX_REPAIR_ROUNDS: usize = 10_000;
    for _ in 0..MAX_REPAIR_ROUNDS {
        let mut seen = std::collections::HashSet::with_capacity(pairs.len());
        let bad: Vec<usize> = pairs
            .iter()
            .enumerate()
            .filter_map(|(idx, &(u, v))| {
                if u == v || !seen.insert((u.min(v), u.max(v))) {
                    Some(idx)
                } else {
                    None
                }
            })
            .collect();
        if bad.is_empty() {
            return AdjacencyList::from_edges(n, &pairs).with_name(format!("regular(d={d})"));
        }
        for idx in bad {
            let other = rng.random_range(0..pairs.len());
            if other == idx {
                continue;
            }
            // Degree-preserving 2-swap: (a,b),(c,e) → (a,e),(c,b).
            let (a, b) = pairs[idx];
            let (c, e) = pairs[other];
            pairs[idx] = (a, e);
            pairs[other] = (c, b);
        }
    }
    panic!("random_regular: repair failed for n={n}, d={d} after {MAX_REPAIR_ROUNDS} rounds");
}

/// Emits each index in `0..total` independently with probability `p`, by
/// geometric skip lengths (one RNG draw per *emitted* index — the
/// Batagelj–Brandes walk the ER sampler uses, factored out so the SBM
/// sampler below stays `O(n + m)` too).
fn bernoulli_indices(total: u64, p: f64, rng: &mut dyn Rng, mut emit: impl FnMut(u64)) {
    if total == 0 || p <= 0.0 {
        return;
    }
    if p >= 1.0 {
        for i in 0..total {
            emit(i);
        }
        return;
    }
    let log_q = (1.0 - p).ln();
    let mut next: u64 = 0;
    loop {
        let r = rng.random_unit();
        let skip = ((1.0 - r).ln() / log_q).floor();
        if skip >= (total - next) as f64 {
            break;
        }
        next += skip as u64;
        emit(next);
        next += 1;
        if next >= total {
            break;
        }
    }
}

/// Samples a stochastic block model: `sizes.len()` blocks, within-block
/// edges with probability `p_in`, cross-block edges with probability
/// `p_out`.
///
/// Node numbering is **community-contiguous**: block `b` owns the index
/// range `[Σ sizes[..b], Σ sizes[..=b])`. That makes blocks align with
/// [`Partition::contiguous`](crate::Partition) shard ranges, so the
/// sharded engine's preferred layout cuts (mostly) the sparse cross-block
/// edges — the SBM is the natural stress/showcase case for the
/// partitioner.
///
/// Sampling walks each block pair's edge-index space with geometric skip
/// lengths (Batagelj–Brandes, as in [`erdos_renyi`]), so the cost is
/// `O(n + m)` — one RNG draw per *present* edge. Sparse community graphs
/// at `n = 65 536` (the scale of the t15 block-diversity experiment)
/// generate in milliseconds where the previous `O(n²)` per-pair scan
/// needed minutes.
///
/// The paper's related work uses this model for community detection via
/// population protocols; here it serves as a clustered topology stressor.
///
/// # Examples
///
/// ```
/// use pp_graph::{stochastic_block_model, Topology};
/// use rand::{rngs::StdRng, SeedableRng};
///
/// let mut rng = StdRng::seed_from_u64(3);
/// let g = stochastic_block_model(&[25, 25], 0.5, 0.05, &mut rng);
/// assert_eq!(g.len(), 50);
/// ```
///
/// # Panics
///
/// Panics if any block is empty, fewer than one block is given, or either
/// probability is outside `[0, 1]`.
pub fn stochastic_block_model(
    sizes: &[usize],
    p_in: f64,
    p_out: f64,
    rng: &mut dyn Rng,
) -> AdjacencyList {
    assert!(!sizes.is_empty(), "need at least one block");
    assert!(sizes.iter().all(|&s| s > 0), "blocks must be non-empty");
    for p in [p_in, p_out] {
        assert!(
            (0.0..=1.0).contains(&p),
            "probability must be in [0, 1], got {p}"
        );
    }
    let n: usize = sizes.iter().sum();
    let mut offsets = Vec::with_capacity(sizes.len());
    let mut acc = 0usize;
    for &s in sizes {
        offsets.push(acc);
        acc += s;
    }
    let mut edges = Vec::new();
    for (a, &sa) in sizes.iter().enumerate() {
        let off_a = offsets[a];
        // Within-block lower triangle: cell c lies in row r (1 ≤ r < sa)
        // after r(r−1)/2 earlier cells; recover the row from the
        // triangular root and the column as the remainder.
        let tri = (sa as u64 * (sa as u64 - 1)) / 2;
        bernoulli_indices(tri, p_in, rng, |c| {
            let mut r = ((1.0 + (1.0 + 8.0 * c as f64).sqrt()) / 2.0).floor() as u64;
            // Float-precision guard: nudge onto the correct row.
            while r * (r - 1) / 2 > c {
                r -= 1;
            }
            while r * (r + 1) / 2 <= c {
                r += 1;
            }
            let col = c - r * (r - 1) / 2;
            edges.push((off_a + col as usize, off_a + r as usize));
        });
        // Cross-block rectangles against every later block.
        for (b, &sb) in sizes.iter().enumerate().skip(a + 1) {
            let off_b = offsets[b];
            bernoulli_indices(sa as u64 * sb as u64, p_out, rng, |m| {
                let u = off_a + (m / sb as u64) as usize;
                let v = off_b + (m % sb as u64) as usize;
                edges.push((u, v));
            });
        }
    }
    AdjacencyList::from_edges(n, &edges).with_name(format!("sbm({} blocks)", sizes.len()))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Topology;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn er_density_near_p() {
        let mut rng = StdRng::seed_from_u64(1);
        let n = 100;
        let p = 0.3;
        let g = erdos_renyi(n, p, &mut rng);
        let possible = n * (n - 1) / 2;
        let density = g.num_edges() as f64 / possible as f64;
        assert!((density - p).abs() < 0.05, "density {density}");
    }

    #[test]
    fn er_extremes() {
        let mut rng = StdRng::seed_from_u64(2);
        assert_eq!(erdos_renyi(10, 0.0, &mut rng).num_edges(), 0);
        assert_eq!(erdos_renyi(10, 1.0, &mut rng).num_edges(), 45);
    }

    #[test]
    fn regular_is_regular() {
        let mut rng = StdRng::seed_from_u64(3);
        for d in [2, 3, 4] {
            let g = random_regular(30, d, &mut rng);
            for u in 0..30 {
                assert_eq!(g.degree(u), d, "d={d}, u={u}");
            }
        }
    }

    #[test]
    #[should_panic(expected = "even")]
    fn regular_rejects_odd_product() {
        let mut rng = StdRng::seed_from_u64(4);
        random_regular(5, 3, &mut rng);
    }

    #[test]
    fn sbm_in_block_denser() {
        let mut rng = StdRng::seed_from_u64(5);
        let g = stochastic_block_model(&[40, 40], 0.5, 0.02, &mut rng);
        let mut within = 0usize;
        let mut across = 0usize;
        for u in 0..80 {
            for v in g.neighbors(u) {
                if v > u {
                    if (u < 40) == (v < 40) {
                        within += 1;
                    } else {
                        across += 1;
                    }
                }
            }
        }
        assert!(within > 4 * across, "within={within} across={across}");
    }

    #[test]
    fn sbm_density_matches_both_probabilities() {
        // The skip sampler must reproduce p_in and p_out, not just their
        // ordering: compare realised within/cross densities to the exact
        // cell counts.
        let mut rng = StdRng::seed_from_u64(6);
        let sizes = [60usize, 40, 50];
        let (p_in, p_out) = (0.3, 0.05);
        let g = stochastic_block_model(&sizes, p_in, p_out, &mut rng);
        let block = |u: usize| {
            if u < 60 {
                0
            } else if u < 100 {
                1
            } else {
                2
            }
        };
        let (mut within, mut across) = (0usize, 0usize);
        for u in 0..g.len() {
            for v in g.neighbors(u) {
                if v > u {
                    if block(u) == block(v) {
                        within += 1;
                    } else {
                        across += 1;
                    }
                }
            }
        }
        let within_cells: usize = sizes.iter().map(|&s| s * (s - 1) / 2).sum();
        let across_cells = 60 * 40 + 60 * 50 + 40 * 50;
        let within_density = within as f64 / within_cells as f64;
        let across_density = across as f64 / across_cells as f64;
        assert!(
            (within_density - p_in).abs() < 0.05,
            "within density {within_density} vs p_in {p_in}"
        );
        assert!(
            (across_density - p_out).abs() < 0.02,
            "across density {across_density} vs p_out {p_out}"
        );
    }

    #[test]
    fn sbm_triangular_mapping_is_well_formed() {
        // p_in = 1 exercises every triangular cell: each block must come
        // out complete, with no self-loops or cross-contamination.
        let mut rng = StdRng::seed_from_u64(7);
        let g = stochastic_block_model(&[7, 5], 1.0, 0.0, &mut rng);
        for u in 0..12 {
            let expect = if u < 7 { 6 } else { 4 };
            assert_eq!(g.degree(u), expect, "node {u}");
            assert!(!g.neighbors(u).contains(&u), "self-loop at {u}");
        }
    }

    #[test]
    fn sbm_skip_sampling_handles_large_sparse_blocks() {
        // 4 × 8192 nodes at average within-degree ~12: the O(n²) scan this
        // replaced would draw ~5·10⁸ Bernoullis; the skip walk draws one
        // per present edge and finishes instantly.
        let n_block = 8_192usize;
        let mut rng = StdRng::seed_from_u64(8);
        let g = stochastic_block_model(
            &[n_block; 4],
            12.0 / n_block as f64,
            1.0 / (3 * n_block) as f64,
            &mut rng,
        );
        assert_eq!(g.len(), 4 * n_block);
        let avg_degree = 2.0 * g.num_edges() as f64 / g.len() as f64;
        assert!(
            (12.0..15.0).contains(&avg_degree),
            "average degree {avg_degree} (expected ~13)"
        );
    }

    #[test]
    fn deterministic_under_seed() {
        let a = erdos_renyi(20, 0.4, &mut StdRng::seed_from_u64(9));
        let b = erdos_renyi(20, 0.4, &mut StdRng::seed_from_u64(9));
        assert_eq!(a, b);
        let s1 = stochastic_block_model(&[30, 30], 0.2, 0.02, &mut StdRng::seed_from_u64(10));
        let s2 = stochastic_block_model(&[30, 30], 0.2, 0.02, &mut StdRng::seed_from_u64(10));
        assert_eq!(s1, s2);
    }
}
