//! The star graph.

use crate::{check_node, Topology};
use rand::{Rng, RngExt};

/// The star `S_n`: node 0 is the hub, nodes `1..n` are leaves attached only
/// to the hub.
///
/// An extreme-degree-skew topology used to stress the protocol where the
/// uniform-neighbour assumption of the complete graph fails hardest.
///
/// # Examples
///
/// ```
/// use pp_graph::{Star, Topology};
///
/// let g = Star::new(5);
/// assert_eq!(g.degree(0), 4);
/// assert_eq!(g.degree(3), 1);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Star {
    n: usize,
}

impl Star {
    /// Creates a star on `n` nodes (1 hub + `n − 1` leaves).
    ///
    /// # Panics
    ///
    /// Panics if `n < 2`.
    pub fn new(n: usize) -> Self {
        assert!(n >= 2, "star needs at least 2 nodes, got {n}");
        Star { n }
    }

    /// Index of the hub node (always 0).
    pub fn hub(&self) -> usize {
        0
    }

    #[inline]
    fn sample_impl<R: Rng>(&self, u: usize, rng: &mut R) -> usize {
        check_node(u, self.n);
        if u == 0 {
            // Same stream as `random_range(1..n)`: span n−1, offset 1.
            1 + rng.random_index(self.n - 1)
        } else {
            0
        }
    }
}

impl Topology for Star {
    fn len(&self) -> usize {
        self.n
    }

    fn resized(&self, new_len: usize) -> Option<Self> {
        Some(Star::new(new_len))
    }

    fn degree(&self, u: usize) -> usize {
        check_node(u, self.n);
        if u == 0 {
            self.n - 1
        } else {
            1
        }
    }

    fn sample_partner(&self, u: usize, mut rng: &mut dyn Rng) -> usize {
        self.sample_impl(u, &mut rng)
    }

    fn sample_partner_mono<R: Rng>(&self, u: usize, rng: &mut R) -> usize {
        self.sample_impl(u, rng)
    }

    fn contains_edge(&self, u: usize, v: usize) -> bool {
        check_node(u, self.n);
        check_node(v, self.n);
        (u == 0) != (v == 0)
    }

    fn neighbors(&self, u: usize) -> Vec<usize> {
        check_node(u, self.n);
        if u == 0 {
            (1..self.n).collect()
        } else {
            vec![0]
        }
    }

    fn name(&self) -> String {
        "star".to_string()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn leaves_always_sample_hub() {
        let g = Star::new(6);
        let mut rng = StdRng::seed_from_u64(3);
        for leaf in 1..6 {
            assert_eq!(g.sample_partner(leaf, &mut rng), 0);
        }
    }

    #[test]
    fn hub_samples_leaves() {
        let g = Star::new(6);
        let mut rng = StdRng::seed_from_u64(4);
        for _ in 0..100 {
            let v = g.sample_partner(0, &mut rng);
            assert!((1..6).contains(&v));
        }
    }

    #[test]
    fn edges_only_touch_hub() {
        let g = Star::new(4);
        assert!(g.contains_edge(0, 2));
        assert!(!g.contains_edge(1, 2));
        assert!(!g.contains_edge(0, 0));
    }

    #[test]
    fn hub_is_zero() {
        assert_eq!(Star::new(3).hub(), 0);
    }
}
