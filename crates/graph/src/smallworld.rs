//! Watts–Strogatz small-world graphs.

use crate::AdjacencyList;
use rand::{Rng, RngExt};

/// Samples a Watts–Strogatz small-world graph: a ring lattice where every
/// node connects to its `k` nearest neighbours on each side, with each
/// "forward" edge rewired to a uniformly random non-duplicate endpoint with
/// probability `p`.
///
/// `p = 0` is the pure lattice (cycle-like, slow mixing); `p = 1` is close
/// to a random graph (fast mixing). Sweeping `p` interpolates the topology
/// experiments between the cycle and the well-mixed regime.
///
/// # Examples
///
/// ```
/// use pp_graph::{watts_strogatz, Topology};
/// use rand::{rngs::StdRng, SeedableRng};
///
/// let mut rng = StdRng::seed_from_u64(1);
/// let g = watts_strogatz(40, 2, 0.1, &mut rng);
/// assert_eq!(g.len(), 40);
/// // Total edge count is preserved by rewiring: n·k.
/// assert_eq!(g.num_edges(), 80);
/// ```
///
/// # Panics
///
/// Panics if `k == 0`, `2k + 1 > n` (the lattice would self-intersect), or
/// `p ∉ [0, 1]`.
pub fn watts_strogatz(n: usize, k: usize, p: f64, rng: &mut dyn Rng) -> AdjacencyList {
    assert!(k >= 1, "each side needs at least one neighbour");
    assert!(2 * k < n, "lattice needs n >= 2k+1 (n={n}, k={k})");
    assert!(
        (0.0..=1.0).contains(&p),
        "rewire probability must be in [0, 1], got {p}"
    );

    // Edge set as normalised pairs for O(1) duplicate checks.
    let mut edges: std::collections::HashSet<(usize, usize)> =
        std::collections::HashSet::with_capacity(n * k);
    let norm = |u: usize, v: usize| (u.min(v), u.max(v));
    for u in 0..n {
        for hop in 1..=k {
            edges.insert(norm(u, (u + hop) % n));
        }
    }

    // Rewire each original forward edge with probability p.
    for u in 0..n {
        for hop in 1..=k {
            let v = (u + hop) % n;
            if !rng.random_bool(p) {
                continue;
            }
            let old = norm(u, v);
            if !edges.contains(&old) {
                continue; // already rewired away by an earlier step
            }
            // Choose a fresh endpoint avoiding self-loops and duplicates.
            let mut attempts = 0;
            loop {
                let w = rng.random_range(0..n);
                let cand = norm(u, w);
                if w != u && !edges.contains(&cand) {
                    edges.remove(&old);
                    edges.insert(cand);
                    break;
                }
                attempts += 1;
                if attempts > 100 {
                    break; // node saturated; keep the lattice edge
                }
            }
        }
    }

    let edge_list: Vec<(usize, usize)> = edges.into_iter().collect();
    AdjacencyList::from_edges(n, &edge_list).with_name(format!("smallworld(k={k},p={p})"))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::connectivity::{diameter, is_connected};
    use crate::Topology;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn p_zero_is_the_lattice() {
        let mut rng = StdRng::seed_from_u64(1);
        let g = watts_strogatz(20, 2, 0.0, &mut rng);
        for u in 0..20 {
            assert_eq!(g.degree(u), 4, "node {u}");
            assert!(g.contains_edge(u, (u + 1) % 20));
            assert!(g.contains_edge(u, (u + 2) % 20));
        }
    }

    #[test]
    fn rewiring_preserves_edge_count() {
        let mut rng = StdRng::seed_from_u64(2);
        for p in [0.0, 0.3, 1.0] {
            let g = watts_strogatz(60, 3, p, &mut rng);
            assert_eq!(g.num_edges(), 180, "p = {p}");
        }
    }

    #[test]
    fn rewiring_shrinks_diameter() {
        let mut rng = StdRng::seed_from_u64(3);
        let lattice = watts_strogatz(100, 2, 0.0, &mut rng);
        let small = watts_strogatz(100, 2, 0.3, &mut rng);
        let d_lattice = diameter(&lattice).expect("lattice connected");
        if let Some(d_small) = diameter(&small) {
            assert!(
                d_small < d_lattice,
                "small-world diameter {d_small} vs lattice {d_lattice}"
            );
        }
    }

    #[test]
    fn usually_connected_at_moderate_p() {
        let mut rng = StdRng::seed_from_u64(4);
        let mut connected = 0;
        for _ in 0..10 {
            if is_connected(&watts_strogatz(50, 3, 0.2, &mut rng)) {
                connected += 1;
            }
        }
        assert!(connected >= 8, "only {connected}/10 connected");
    }

    #[test]
    #[should_panic(expected = "n >= 2k+1")]
    fn rejects_oversized_k() {
        let mut rng = StdRng::seed_from_u64(5);
        watts_strogatz(6, 3, 0.1, &mut rng);
    }
}
