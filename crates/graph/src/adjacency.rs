//! Explicit adjacency-list topologies.

use crate::{check_node, Csr, Topology};
use rand::{Rng, RngExt};

/// A topology stored as explicit neighbour lists.
///
/// Backs the random-graph constructors ([`erdos_renyi`](crate::erdos_renyi),
/// [`random_regular`](crate::random_regular),
/// [`stochastic_block_model`](crate::stochastic_block_model)) and arbitrary
/// user-supplied edge sets. Self-loops and duplicate edges are rejected at
/// construction so the uniform-neighbour sampling contract of
/// [`Topology::sample_partner`] holds by construction.
///
/// # Examples
///
/// ```
/// use pp_graph::{AdjacencyList, Topology};
///
/// // A triangle plus a pendant node.
/// let g = AdjacencyList::from_edges(4, &[(0, 1), (1, 2), (2, 0), (2, 3)]);
/// assert_eq!(g.degree(2), 3);
/// assert_eq!(g.degree(3), 1);
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AdjacencyList {
    adj: Vec<Vec<usize>>,
    num_edges: usize,
    name: String,
}

impl AdjacencyList {
    /// Builds a topology on `n` nodes from an undirected edge list.
    ///
    /// # Panics
    ///
    /// Panics on self-loops, duplicate edges, or endpoints `>= n`.
    pub fn from_edges(n: usize, edges: &[(usize, usize)]) -> Self {
        let mut adj = vec![Vec::new(); n];
        for &(u, v) in edges {
            assert!(u < n && v < n, "edge ({u},{v}) out of range for {n} nodes");
            assert_ne!(u, v, "self-loop at node {u}");
            adj[u].push(v);
            adj[v].push(u);
        }
        for (u, ns) in adj.iter_mut().enumerate() {
            let before = ns.len();
            ns.sort_unstable();
            ns.dedup();
            assert_eq!(ns.len(), before, "duplicate edge incident to node {u}");
        }
        AdjacencyList {
            adj,
            num_edges: edges.len(),
            name: "adjacency".to_string(),
        }
    }

    /// Sets the display name used in experiment tables.
    pub fn with_name(mut self, name: impl Into<String>) -> Self {
        self.name = name.into();
        self
    }

    /// Number of undirected edges.
    pub fn num_edges(&self) -> usize {
        self.num_edges
    }

    /// Minimum degree over all nodes (`0` for an empty graph).
    pub fn min_degree(&self) -> usize {
        self.adj.iter().map(Vec::len).min().unwrap_or(0)
    }

    /// Maximum degree over all nodes (`0` for an empty graph).
    pub fn max_degree(&self) -> usize {
        self.adj.iter().map(Vec::len).max().unwrap_or(0)
    }

    /// Lowers this validated builder into the flat [`Csr`] simulation
    /// format: contiguous `offsets`/`neighbors` arrays, one slice read per
    /// partner draw instead of chasing `Vec<Vec<usize>>`. Per-node
    /// neighbour order is preserved, so sampling consumes the RNG
    /// identically in either representation.
    ///
    /// # Panics
    ///
    /// Panics if the graph has more than `u32::MAX` nodes.
    pub fn to_csr(&self) -> Csr {
        Csr::from_adjacency(self)
    }

    #[inline]
    fn sample_impl<R: Rng>(&self, u: usize, rng: &mut R) -> usize {
        check_node(u, self.adj.len());
        let ns = &self.adj[u];
        assert!(
            !ns.is_empty(),
            "node {u} is isolated; cannot sample a partner"
        );
        ns[rng.random_index(ns.len())]
    }
}

impl Topology for AdjacencyList {
    fn len(&self) -> usize {
        self.adj.len()
    }

    fn degree(&self, u: usize) -> usize {
        check_node(u, self.adj.len());
        self.adj[u].len()
    }

    fn sample_partner(&self, u: usize, mut rng: &mut dyn Rng) -> usize {
        self.sample_impl(u, &mut rng)
    }

    fn sample_partner_mono<R: Rng>(&self, u: usize, rng: &mut R) -> usize {
        self.sample_impl(u, rng)
    }

    fn contains_edge(&self, u: usize, v: usize) -> bool {
        check_node(u, self.adj.len());
        check_node(v, self.adj.len());
        self.adj[u].binary_search(&v).is_ok()
    }

    fn neighbors(&self, u: usize) -> Vec<usize> {
        check_node(u, self.adj.len());
        self.adj[u].clone()
    }

    fn name(&self) -> String {
        self.name.clone()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn builds_triangle() {
        let g = AdjacencyList::from_edges(3, &[(0, 1), (1, 2), (2, 0)]);
        assert_eq!(g.num_edges(), 3);
        for u in 0..3 {
            assert_eq!(g.degree(u), 2);
        }
        assert!(g.contains_edge(0, 2));
    }

    #[test]
    fn sampling_respects_edges() {
        let g = AdjacencyList::from_edges(4, &[(0, 1), (0, 2), (0, 3)]);
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..50 {
            let v = g.sample_partner(0, &mut rng);
            assert!(g.contains_edge(0, v));
            assert_eq!(g.sample_partner(2, &mut rng), 0);
        }
    }

    #[test]
    fn degree_extremes() {
        let g = AdjacencyList::from_edges(4, &[(0, 1), (0, 2), (0, 3)]);
        assert_eq!(g.min_degree(), 1);
        assert_eq!(g.max_degree(), 3);
    }

    #[test]
    #[should_panic(expected = "self-loop")]
    fn rejects_self_loop() {
        AdjacencyList::from_edges(2, &[(1, 1)]);
    }

    #[test]
    #[should_panic(expected = "duplicate edge")]
    fn rejects_duplicate_edge() {
        AdjacencyList::from_edges(3, &[(0, 1), (1, 0)]);
    }

    #[test]
    #[should_panic(expected = "isolated")]
    fn isolated_node_cannot_sample() {
        let g = AdjacencyList::from_edges(3, &[(0, 1)]);
        let mut rng = StdRng::seed_from_u64(2);
        g.sample_partner(2, &mut rng);
    }

    #[test]
    fn with_name_changes_label() {
        let g = AdjacencyList::from_edges(2, &[(0, 1)]).with_name("er");
        assert_eq!(g.name(), "er");
    }
}
