//! Node-set partitioning for the graph-partitioned parallel engine.
//!
//! A [`Partition`] splits the nodes `0..n` of a topology into `shards`
//! disjoint, jointly exhaustive shards of near-equal size (sizes differ by
//! at most one). Two layouts exist:
//!
//! * [`PartitionKind::Contiguous`] — shard `s` owns one contiguous index
//!   range. The right layout for topologies whose node numbering is
//!   geometric (cycles, paths, row-major tori, CSR lowerings of them):
//!   contiguous ranges cut few edges, so almost every interaction is
//!   shard-local.
//! * [`PartitionKind::Strided`] — shard `s` owns `{u : u mod shards = s}`.
//!   The right layout for the complete graph and other index-symmetric
//!   families: no layout can reduce the cut there, but striding keeps each
//!   shard's sub-population representative of index-patterned initial
//!   configurations (experiments assign colours by `u mod k` or put
//!   special agents at index 0), so per-shard work and boundary-queue
//!   sizes stay statistically uniform.
//!
//! [`Topology::preferred_partition`] lets each family pick its layout;
//! [`Partition::boundary_edges`] extracts the cross-shard edges of a
//! [`Csr`] — the interactions a partitioned engine must reconcile rather
//! than run shard-locally — and [`Partition::cross_edge_fraction`] is the
//! planning number: the expected fraction of interactions that land on the
//! reconciliation path.

use crate::{Csr, Topology};

/// How a [`Partition`] maps node indices to shards.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum PartitionKind {
    /// Shard `s` owns one contiguous index range.
    Contiguous,
    /// Shard `s` owns the indices congruent to `s` modulo the shard count.
    Strided,
}

/// A disjoint, exhaustive split of the node set `0..len` into shards.
///
/// # Examples
///
/// ```
/// use pp_graph::{Partition, PartitionKind};
///
/// let p = Partition::contiguous(10, 3);
/// assert_eq!(p.shards(), 3);
/// // Sizes are balanced to within one.
/// assert_eq!((0..3).map(|s| p.size(s)).collect::<Vec<_>>(), vec![4, 3, 3]);
/// // Every node belongs to exactly one shard.
/// assert_eq!(p.shard_of(3), 0);
/// assert_eq!(p.shard_of(4), 1);
/// let s = Partition::new(10, 3, PartitionKind::Strided);
/// assert_eq!(s.shard_of(7), 1);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Partition {
    n: usize,
    shards: usize,
    kind: PartitionKind,
}

impl Partition {
    /// Creates a partition of `0..n` into `shards` shards.
    ///
    /// # Panics
    ///
    /// Panics if `n == 0`, `shards == 0`, or `shards > n` (an empty shard
    /// would schedule no work but still cost a merge participant).
    pub fn new(n: usize, shards: usize, kind: PartitionKind) -> Self {
        assert!(n > 0, "cannot partition an empty node set");
        assert!(shards > 0, "need at least one shard");
        assert!(
            shards <= n,
            "{shards} shards over {n} nodes would leave empty shards"
        );
        Partition { n, shards, kind }
    }

    /// A contiguous-range partition of `0..n` into `shards` shards.
    ///
    /// # Panics
    ///
    /// Same conditions as [`new`](Self::new).
    pub fn contiguous(n: usize, shards: usize) -> Self {
        Self::new(n, shards, PartitionKind::Contiguous)
    }

    /// An index-strided partition of `0..n` into `shards` shards.
    ///
    /// # Panics
    ///
    /// Same conditions as [`new`](Self::new).
    pub fn strided(n: usize, shards: usize) -> Self {
        Self::new(n, shards, PartitionKind::Strided)
    }

    /// Number of nodes partitioned.
    pub fn len(&self) -> usize {
        self.n
    }

    /// Returns `false`: partitions are never empty (enforced at
    /// construction); provided for API symmetry.
    pub fn is_empty(&self) -> bool {
        false
    }

    /// Number of shards.
    pub fn shards(&self) -> usize {
        self.shards
    }

    /// The layout.
    pub fn kind(&self) -> PartitionKind {
        self.kind
    }

    /// Number of nodes in shard `s`.
    ///
    /// # Panics
    ///
    /// Panics if `s >= shards()`.
    pub fn size(&self, s: usize) -> usize {
        self.check_shard(s);
        let base = self.n / self.shards;
        // Both layouts hand the remainder to the lowest-indexed shards.
        base + usize::from(s < self.n % self.shards)
    }

    /// The shard owning node `u`.
    ///
    /// # Panics
    ///
    /// Panics if `u >= len()`.
    pub fn shard_of(&self, u: usize) -> usize {
        self.check_node(u);
        match self.kind {
            PartitionKind::Strided => u % self.shards,
            PartitionKind::Contiguous => {
                let base = self.n / self.shards;
                let rem = self.n % self.shards;
                let fat = rem * (base + 1);
                if u < fat {
                    u / (base + 1)
                } else {
                    rem + (u - fat) / base
                }
            }
        }
    }

    /// The position of node `u` inside its shard's local state array.
    ///
    /// # Panics
    ///
    /// Panics if `u >= len()`.
    pub fn local_index(&self, u: usize) -> usize {
        self.check_node(u);
        match self.kind {
            PartitionKind::Strided => u / self.shards,
            PartitionKind::Contiguous => u - self.range(self.shard_of(u)).start,
        }
    }

    /// The node at local position `j` of shard `s` — the inverse of
    /// [`local_index`](Self::local_index).
    ///
    /// # Panics
    ///
    /// Panics if `s >= shards()` or `j >= size(s)`.
    pub fn global_index(&self, s: usize, j: usize) -> usize {
        self.check_shard(s);
        assert!(
            j < self.size(s),
            "local index {j} out of range for shard {s} of {} nodes",
            self.size(s)
        );
        match self.kind {
            PartitionKind::Strided => j * self.shards + s,
            PartitionKind::Contiguous => self.range(s).start + j,
        }
    }

    /// The contiguous index range of shard `s` under the contiguous
    /// layout.
    ///
    /// # Panics
    ///
    /// Panics if `s >= shards()` or the layout is
    /// [`Strided`](PartitionKind::Strided) (a strided shard has no
    /// contiguous range).
    pub fn range(&self, s: usize) -> core::ops::Range<usize> {
        self.check_shard(s);
        assert!(
            self.kind == PartitionKind::Contiguous,
            "range() is only defined for contiguous partitions"
        );
        let base = self.n / self.shards;
        let rem = self.n % self.shards;
        let start = s * base + s.min(rem);
        start..start + self.size(s)
    }

    /// Iterates the nodes of shard `s` in increasing order.
    ///
    /// # Panics
    ///
    /// Panics if `s >= shards()`.
    pub fn members(&self, s: usize) -> impl Iterator<Item = usize> + '_ {
        self.check_shard(s);
        (0..self.size(s)).map(move |j| self.global_index(s, j))
    }

    /// The cross-shard edges of `g`: every undirected edge `{u, v}` (as
    /// `(u, v)` with `u < v`) whose endpoints fall in different shards, in
    /// lexicographic order. These are exactly the interactions a
    /// partitioned engine cannot run shard-locally.
    ///
    /// # Panics
    ///
    /// Panics if `g.len() != len()`.
    pub fn boundary_edges(&self, g: &Csr) -> Vec<(u32, u32)> {
        assert_eq!(
            g.len(),
            self.n,
            "partition over {} nodes applied to a graph of {} nodes",
            self.n,
            g.len()
        );
        let mut out = Vec::new();
        for u in 0..self.n {
            let su = self.shard_of(u);
            for &v in g.neighbor_slice(u) {
                let v = v as usize;
                if u < v && self.shard_of(v) != su {
                    out.push((u as u32, v as u32));
                }
            }
        }
        out
    }

    /// The fraction of partner draws that cross shards when every edge is
    /// equally likely to carry the next interaction — `0.0` for a
    /// single-shard partition, approaching `(shards − 1)/shards` on
    /// expanders and the complete graph. This is the planning number for
    /// the partitioned engine: it is the expected share of interactions
    /// that must take the (sequential) reconciliation path instead of the
    /// parallel shard-local one.
    ///
    /// Exact under uniform scheduling on regular graphs; on irregular
    /// graphs it weights each node by its degree, which matches the edge
    /// (not the activation) distribution and is the conventional cut
    /// metric.
    ///
    /// # Panics
    ///
    /// Panics if `g.len() != len()` or `g` has no edges.
    pub fn cross_edge_fraction(&self, g: &Csr) -> f64 {
        assert!(g.num_edges() > 0, "cut fraction of an edgeless graph");
        self.boundary_edges(g).len() as f64 / g.num_edges() as f64
    }

    fn check_shard(&self, s: usize) {
        assert!(
            s < self.shards,
            "shard index {s} out of range for {} shards",
            self.shards
        );
    }

    fn check_node(&self, u: usize) {
        assert!(
            u < self.n,
            "node index {u} out of range for partition of {} nodes",
            self.n
        );
    }
}

/// The partition layout a topology prefers, given its node-numbering
/// geometry (see [`Topology::preferred_partition`]).
pub fn preferred_partition_for<T: Topology + ?Sized>(g: &T, shards: usize) -> Partition {
    Partition::new(g.len(), shards, g.preferred_partition())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{AdjacencyList, Complete, Cycle};

    #[test]
    fn contiguous_layout_round_trips() {
        for n in [1usize, 2, 7, 10, 64, 65] {
            for shards in [1usize, 2, 3, 5].into_iter().filter(|&s| s <= n) {
                let p = Partition::contiguous(n, shards);
                let total: usize = (0..shards).map(|s| p.size(s)).sum();
                assert_eq!(total, n);
                for u in 0..n {
                    let s = p.shard_of(u);
                    assert!(p.range(s).contains(&u));
                    assert_eq!(p.global_index(s, p.local_index(u)), u);
                }
            }
        }
    }

    #[test]
    fn strided_layout_round_trips() {
        for n in [1usize, 2, 7, 10, 64, 65] {
            for shards in [1usize, 2, 3, 5].into_iter().filter(|&s| s <= n) {
                let p = Partition::strided(n, shards);
                for u in 0..n {
                    assert_eq!(p.shard_of(u), u % shards);
                    assert_eq!(p.global_index(p.shard_of(u), p.local_index(u)), u);
                }
                for s in 0..shards {
                    let members: Vec<usize> = p.members(s).collect();
                    assert_eq!(members.len(), p.size(s));
                    assert!(members.windows(2).all(|w| w[0] < w[1]));
                }
            }
        }
    }

    #[test]
    fn sizes_differ_by_at_most_one() {
        for kind in [PartitionKind::Contiguous, PartitionKind::Strided] {
            let p = Partition::new(11, 4, kind);
            let sizes: Vec<usize> = (0..4).map(|s| p.size(s)).collect();
            assert_eq!(sizes, vec![3, 3, 3, 2]);
        }
    }

    #[test]
    fn cycle_boundary_edges_are_the_cut_points() {
        // A 12-cycle in 3 contiguous shards of 4: the cut edges are the
        // three range borders plus the wrap-around edge.
        let csr = Csr::from_topology(&Cycle::new(12));
        let p = Partition::contiguous(12, 3);
        assert_eq!(p.boundary_edges(&csr), vec![(0, 11), (3, 4), (7, 8)],);
        assert!((p.cross_edge_fraction(&csr) - 3.0 / 12.0).abs() < 1e-12);
    }

    #[test]
    fn complete_cut_fraction_matches_closed_form() {
        // K_8 in 4 strided shards of 2: within-shard edges are 4 of 28.
        let csr = Csr::from_topology(&Complete::new(8));
        let p = Partition::strided(8, 4);
        assert_eq!(p.boundary_edges(&csr).len(), 24);
        assert!((p.cross_edge_fraction(&csr) - 24.0 / 28.0).abs() < 1e-12);
    }

    #[test]
    fn single_shard_has_no_boundary() {
        let csr = AdjacencyList::from_edges(5, &[(0, 1), (1, 2), (2, 3), (3, 4)]).to_csr();
        let p = Partition::contiguous(5, 1);
        assert!(p.boundary_edges(&csr).is_empty());
        assert_eq!(p.cross_edge_fraction(&csr), 0.0);
    }

    #[test]
    fn preferred_partition_follows_topology() {
        assert_eq!(
            preferred_partition_for(&Complete::new(8), 2).kind(),
            PartitionKind::Strided
        );
        assert_eq!(
            preferred_partition_for(&Cycle::new(8), 2).kind(),
            PartitionKind::Contiguous
        );
    }

    #[test]
    #[should_panic(expected = "empty shards")]
    fn rejects_more_shards_than_nodes() {
        Partition::contiguous(3, 4);
    }

    #[test]
    #[should_panic(expected = "only defined for contiguous")]
    fn strided_has_no_ranges() {
        Partition::strided(8, 2).range(0);
    }
}
