//! The complete graph — the paper's interaction model.

use crate::{check_node, Topology};
use rand::{Rng, RngExt};

/// The complete graph `K_n`: every agent can observe every other agent.
///
/// This is the topology the paper's theorems are stated for. Partner
/// sampling is `O(1)` and edge-free: a uniform draw from `0..n-1` shifted
/// past the scheduled agent.
///
/// # Examples
///
/// ```
/// use pp_graph::{Complete, Topology};
///
/// let g = Complete::new(5);
/// assert_eq!(g.degree(0), 4);
/// assert!(g.contains_edge(1, 4));
/// assert!(!g.contains_edge(2, 2));
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Complete {
    n: usize,
}

impl Complete {
    /// Creates a complete graph on `n` nodes.
    ///
    /// # Panics
    ///
    /// Panics if `n < 2` (a lone agent has nobody to observe).
    pub fn new(n: usize) -> Self {
        assert!(n >= 2, "complete graph needs at least 2 nodes, got {n}");
        Complete { n }
    }

    #[inline]
    fn sample_impl<R: Rng>(&self, u: usize, rng: &mut R) -> usize {
        check_node(u, self.n);
        let v = rng.random_index(self.n - 1);
        if v >= u {
            v + 1
        } else {
            v
        }
    }
}

impl Topology for Complete {
    fn len(&self) -> usize {
        self.n
    }

    fn resized(&self, new_len: usize) -> Option<Self> {
        Some(Complete::new(new_len))
    }

    fn degree(&self, u: usize) -> usize {
        check_node(u, self.n);
        self.n - 1
    }

    fn sample_partner(&self, u: usize, mut rng: &mut dyn Rng) -> usize {
        self.sample_impl(u, &mut rng)
    }

    fn sample_partner_mono<R: Rng>(&self, u: usize, rng: &mut R) -> usize {
        self.sample_impl(u, rng)
    }

    fn sample_partner_turbo(&self, u: usize, bits: u64) -> usize {
        check_node(u, self.n);
        // Multiply-shift over n−1 (bias (n−1)/2⁶⁴), then the usual shift
        // past the scheduled agent; branch-free.
        let v = ((bits as u128 * (self.n - 1) as u128) >> 64) as usize;
        v + usize::from(v >= u)
    }

    fn preferred_partition(&self) -> crate::PartitionKind {
        // Every balanced layout cuts the same number of K_n edges;
        // striding is preferred so shard sub-populations stay
        // representative of index-patterned initial configurations.
        crate::PartitionKind::Strided
    }

    fn contains_edge(&self, u: usize, v: usize) -> bool {
        check_node(u, self.n);
        check_node(v, self.n);
        u != v
    }

    fn neighbors(&self, u: usize) -> Vec<usize> {
        check_node(u, self.n);
        (0..self.n).filter(|&v| v != u).collect()
    }

    fn name(&self) -> String {
        "complete".to_string()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn never_samples_self() {
        let g = Complete::new(10);
        let mut rng = StdRng::seed_from_u64(1);
        for u in 0..10 {
            for _ in 0..200 {
                assert_ne!(g.sample_partner(u, &mut rng), u);
            }
        }
    }

    #[test]
    fn sampling_is_roughly_uniform() {
        let g = Complete::new(5);
        let mut rng = StdRng::seed_from_u64(2);
        let mut counts = [0u32; 5];
        let trials = 40_000;
        for _ in 0..trials {
            counts[g.sample_partner(2, &mut rng)] += 1;
        }
        assert_eq!(counts[2], 0);
        for (v, &c) in counts.iter().enumerate() {
            if v != 2 {
                let frac = c as f64 / trials as f64;
                assert!((frac - 0.25).abs() < 0.02, "node {v}: {frac}");
            }
        }
    }

    #[test]
    fn neighbors_exclude_self() {
        let g = Complete::new(4);
        assert_eq!(g.neighbors(1), vec![0, 2, 3]);
    }

    #[test]
    #[should_panic(expected = "at least 2")]
    fn rejects_singleton() {
        Complete::new(1);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn rejects_bad_node() {
        let g = Complete::new(3);
        g.degree(3);
    }
}
