//! One-dimensional topologies: cycle and path.

use crate::{check_node, Topology};
use rand::{Rng, RngExt};

/// The cycle `C_n`: node `u` neighbours `(u−1) mod n` and `(u+1) mod n`.
///
/// The sparsest vertex-transitive topology; used for the "other graph
/// topologies" future-work experiments.
///
/// # Examples
///
/// ```
/// use pp_graph::{Cycle, Topology};
///
/// let g = Cycle::new(6);
/// assert_eq!(g.degree(0), 2);
/// assert!(g.contains_edge(0, 5));
/// assert!(!g.contains_edge(0, 3));
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Cycle {
    n: usize,
}

impl Cycle {
    /// Creates a cycle on `n` nodes.
    ///
    /// # Panics
    ///
    /// Panics if `n < 3` (smaller cycles degenerate into multi-edges).
    pub fn new(n: usize) -> Self {
        assert!(n >= 3, "cycle needs at least 3 nodes, got {n}");
        Cycle { n }
    }

    #[inline]
    fn sample_impl<R: Rng + ?Sized>(&self, u: usize, rng: &mut R) -> usize {
        check_node(u, self.n);
        if rng.random_bool(0.5) {
            (u + 1) % self.n
        } else {
            (u + self.n - 1) % self.n
        }
    }
}

impl Topology for Cycle {
    fn len(&self) -> usize {
        self.n
    }

    fn resized(&self, new_len: usize) -> Option<Self> {
        Some(Cycle::new(new_len))
    }

    fn degree(&self, u: usize) -> usize {
        check_node(u, self.n);
        2
    }

    fn sample_partner(&self, u: usize, rng: &mut dyn Rng) -> usize {
        self.sample_impl(u, rng)
    }

    fn sample_partner_mono<R: Rng>(&self, u: usize, rng: &mut R) -> usize {
        self.sample_impl(u, rng)
    }

    fn sample_partner_turbo(&self, u: usize, bits: u64) -> usize {
        check_node(u, self.n);
        // Direction from the top bit; ±1 with wrap. `select_unpredictable`
        // guarantees conditional moves: a 50/50 direction *branch* would
        // mispredict every other step, and on the turbo batch path there
        // is no serial RNG latency to hide the flush behind (LLVM happily
        // rewrites mask arithmetic back into branches otherwise).
        let delta = std::hint::select_unpredictable(bits >> 63 != 0, 1, self.n - 1);
        let v = u + delta;
        // Both arms are evaluated eagerly, so the untaken subtraction must
        // wrap instead of underflowing.
        std::hint::select_unpredictable(v >= self.n, v.wrapping_sub(self.n), v)
    }

    fn contains_edge(&self, u: usize, v: usize) -> bool {
        check_node(u, self.n);
        check_node(v, self.n);
        let d = u.abs_diff(v);
        d == 1 || d == self.n - 1
    }

    fn neighbors(&self, u: usize) -> Vec<usize> {
        check_node(u, self.n);
        vec![(u + self.n - 1) % self.n, (u + 1) % self.n]
    }

    fn name(&self) -> String {
        "cycle".to_string()
    }
}

/// The path `P_n`: nodes `0..n` in a line; the endpoints have degree 1.
///
/// # Examples
///
/// ```
/// use pp_graph::{Path, Topology};
///
/// let g = Path::new(4);
/// assert_eq!(g.degree(0), 1);
/// assert_eq!(g.degree(1), 2);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Path {
    n: usize,
}

impl Path {
    /// Creates a path on `n` nodes.
    ///
    /// # Panics
    ///
    /// Panics if `n < 2`.
    pub fn new(n: usize) -> Self {
        assert!(n >= 2, "path needs at least 2 nodes, got {n}");
        Path { n }
    }

    #[inline]
    fn sample_impl<R: Rng + ?Sized>(&self, u: usize, rng: &mut R) -> usize {
        check_node(u, self.n);
        if u == 0 {
            1
        } else if u == self.n - 1 {
            self.n - 2
        } else if rng.random_bool(0.5) {
            u + 1
        } else {
            u - 1
        }
    }
}

impl Topology for Path {
    fn len(&self) -> usize {
        self.n
    }

    fn resized(&self, new_len: usize) -> Option<Self> {
        Some(Path::new(new_len))
    }

    fn degree(&self, u: usize) -> usize {
        check_node(u, self.n);
        if u == 0 || u == self.n - 1 {
            1
        } else {
            2
        }
    }

    fn sample_partner(&self, u: usize, rng: &mut dyn Rng) -> usize {
        self.sample_impl(u, rng)
    }

    fn sample_partner_mono<R: Rng>(&self, u: usize, rng: &mut R) -> usize {
        self.sample_impl(u, rng)
    }

    fn contains_edge(&self, u: usize, v: usize) -> bool {
        check_node(u, self.n);
        check_node(v, self.n);
        u.abs_diff(v) == 1
    }

    fn neighbors(&self, u: usize) -> Vec<usize> {
        check_node(u, self.n);
        let mut out = Vec::with_capacity(2);
        if u > 0 {
            out.push(u - 1);
        }
        if u + 1 < self.n {
            out.push(u + 1);
        }
        out
    }

    fn name(&self) -> String {
        "path".to_string()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn cycle_wraps_around() {
        let g = Cycle::new(5);
        assert_eq!(g.neighbors(0), vec![4, 1]);
        assert_eq!(g.neighbors(4), vec![3, 0]);
    }

    #[test]
    fn cycle_samples_only_neighbors() {
        let g = Cycle::new(7);
        let mut rng = StdRng::seed_from_u64(5);
        for _ in 0..100 {
            let v = g.sample_partner(3, &mut rng);
            assert!(v == 2 || v == 4);
        }
    }

    #[test]
    fn path_endpoints() {
        let g = Path::new(4);
        assert_eq!(g.neighbors(0), vec![1]);
        assert_eq!(g.neighbors(3), vec![2]);
        assert_eq!(g.neighbors(2), vec![1, 3]);
        let mut rng = StdRng::seed_from_u64(9);
        assert_eq!(g.sample_partner(0, &mut rng), 1);
        assert_eq!(g.sample_partner(3, &mut rng), 2);
    }

    #[test]
    fn path_edges() {
        let g = Path::new(3);
        assert!(g.contains_edge(0, 1));
        assert!(!g.contains_edge(0, 2));
    }

    #[test]
    #[should_panic(expected = "at least 3")]
    fn cycle_rejects_small() {
        Cycle::new(2);
    }
}
