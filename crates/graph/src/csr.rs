//! Compressed sparse row (CSR) topology storage.
//!
//! [`AdjacencyList`] is the *validated builder*: it checks self-loops,
//! duplicates, and range at construction but stores neighbours as
//! `Vec<Vec<usize>>` — two dependent pointer loads per partner draw, with
//! per-node heap allocations scattered across the heap. [`Csr`] is the
//! *simulation format* those builders lower into: one flat `offsets` array
//! and one flat `neighbors` array, so [`Topology::sample_partner`] is a
//! single contiguous-slice read. Every graph constructor in this crate can
//! reach it via [`AdjacencyList::to_csr`] or [`Csr::from_topology`].
//!
//! Node ids are stored as `u32` (half the memory traffic of `usize`); the
//! constructors reject graphs with more than `u32::MAX` nodes.

use crate::{check_node, AdjacencyList, Topology};
use rand::{Rng, RngExt};

/// A topology in compressed-sparse-row form: the neighbours of node `u` are
/// `neighbors[offsets[u]..offsets[u + 1]]`, sorted ascending.
///
/// # Examples
///
/// ```
/// use pp_graph::{AdjacencyList, Csr, Topology};
///
/// let g = AdjacencyList::from_edges(4, &[(0, 1), (1, 2), (2, 0), (2, 3)]).to_csr();
/// assert_eq!(g.degree(2), 3);
/// assert!(g.contains_edge(2, 3));
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Csr {
    offsets: Vec<usize>,
    neighbors: Vec<u32>,
    /// When every node has the same degree `d > 0`, set to `d`: the hot
    /// path then computes `offsets[u] = u·d` instead of loading it,
    /// removing one random memory access per partner draw. `0` means
    /// degrees vary and `offsets` is authoritative.
    uniform_degree: usize,
    num_edges: usize,
    name: String,
    /// The layout reported by [`Topology::preferred_partition`]. CSR
    /// lowerings default to contiguous ranges (right for geometric
    /// numberings and community-contiguous SBMs); samples whose numbering
    /// carries no locality can override via
    /// [`with_preferred_partition`](Csr::with_preferred_partition).
    preferred: crate::PartitionKind,
}

impl Csr {
    /// Lowers any topology into CSR form by materialising every neighbour
    /// list. The result keeps the source's [`name`](Topology::name).
    ///
    /// Use this for the structured families (cycle, torus, hypercube, …)
    /// when an experiment wants one uniform representation; the arithmetic
    /// originals need no memory at all, so lowering them only pays off when
    /// heterogeneous sweeps want a single concrete type.
    ///
    /// # Panics
    ///
    /// Panics if the topology has more than `u32::MAX` nodes.
    pub fn from_topology<T: Topology + ?Sized>(topology: &T) -> Self {
        let n = topology.len();
        assert!(
            u32::try_from(n).is_ok(),
            "CSR stores node ids as u32; {n} nodes is too many"
        );
        let mut offsets = Vec::with_capacity(n + 1);
        offsets.push(0usize);
        let mut neighbors = Vec::new();
        for u in 0..n {
            let mut ns = topology.neighbors(u);
            ns.sort_unstable();
            neighbors.extend(ns.iter().map(|&v| v as u32));
            offsets.push(neighbors.len());
        }
        let first_degree = offsets.get(1).copied().unwrap_or(0);
        let uniform_degree =
            if first_degree > 0 && offsets.windows(2).all(|w| w[1] - w[0] == first_degree) {
                first_degree
            } else {
                0
            };
        Csr {
            offsets,
            uniform_degree,
            num_edges: neighbors.len() / 2,
            neighbors,
            name: topology.name(),
            preferred: topology.preferred_partition(),
        }
    }

    /// Lowers a validated [`AdjacencyList`] into CSR form.
    ///
    /// Equivalent to [`AdjacencyList::to_csr`]; both preserve the builder's
    /// per-node neighbour order (sorted ascending), so partner sampling
    /// consumes the RNG identically in either representation.
    ///
    /// # Panics
    ///
    /// Panics if the graph has more than `u32::MAX` nodes.
    pub fn from_adjacency(adj: &AdjacencyList) -> Self {
        Self::from_topology(adj)
    }

    /// Overrides the partition layout this graph reports to partitioned
    /// engines ([`Topology::preferred_partition`]).
    ///
    /// The lowering default is the source topology's preference
    /// (contiguous for builder graphs) — correct whenever the node
    /// numbering is geometric or community-contiguous, e.g.
    /// [`stochastic_block_model`](crate::stochastic_block_model) blocks
    /// aligning with [`Partition`](crate::Partition) contiguous shard
    /// ranges. Override to [`PartitionKind::Strided`](crate::PartitionKind)
    /// for samples whose numbering carries no locality, so shard
    /// sub-populations stay representative of index-patterned initial
    /// configurations.
    pub fn with_preferred_partition(mut self, kind: crate::PartitionKind) -> Self {
        self.preferred = kind;
        self
    }

    /// Sets the display name used in experiment tables.
    pub fn with_name(mut self, name: impl Into<String>) -> Self {
        self.name = name.into();
        self
    }

    /// Number of undirected edges.
    pub fn num_edges(&self) -> usize {
        self.num_edges
    }

    /// The neighbours of `u` as a contiguous sorted slice (no allocation —
    /// this is the hot-path view [`neighbors`](Topology::neighbors) copies).
    ///
    /// # Panics
    ///
    /// Panics if `u >= len()`.
    pub fn neighbor_slice(&self, u: usize) -> &[u32] {
        check_node(u, self.len());
        &self.neighbors[self.offsets[u]..self.offsets[u + 1]]
    }

    /// Minimum degree over all nodes (`0` for an empty graph).
    pub fn min_degree(&self) -> usize {
        (0..self.len())
            .map(|u| self.offsets[u + 1] - self.offsets[u])
            .min()
            .unwrap_or(0)
    }

    #[inline]
    fn sample_impl<R: Rng>(&self, u: usize, rng: &mut R) -> usize {
        let (start, degree) = if self.uniform_degree != 0 {
            (u * self.uniform_degree, self.uniform_degree)
        } else {
            let start = self.offsets[u];
            (start, self.offsets[u + 1] - start)
        };
        assert!(degree > 0, "node {u} is isolated; cannot sample a partner");
        self.neighbors[start + rng.random_index(degree)] as usize
    }
}

impl Topology for Csr {
    fn len(&self) -> usize {
        self.offsets.len() - 1
    }

    fn degree(&self, u: usize) -> usize {
        check_node(u, self.len());
        self.offsets[u + 1] - self.offsets[u]
    }

    fn sample_partner(&self, u: usize, mut rng: &mut dyn Rng) -> usize {
        check_node(u, self.len());
        self.sample_impl(u, &mut rng)
    }

    fn sample_partner_mono<R: Rng>(&self, u: usize, rng: &mut R) -> usize {
        self.sample_impl(u, rng)
    }

    fn sample_partner_turbo(&self, u: usize, bits: u64) -> usize {
        // Multiply-shift over the degree (bias d/2^64) instead of Lemire
        // rejection; otherwise identical to the exact sampler.
        let (start, degree) = if self.uniform_degree != 0 {
            (u * self.uniform_degree, self.uniform_degree)
        } else {
            let start = self.offsets[u];
            (start, self.offsets[u + 1] - start)
        };
        assert!(degree > 0, "node {u} is isolated; cannot sample a partner");
        let idx = ((bits as u128 * degree as u128) >> 64) as usize;
        self.neighbors[start + idx] as usize
    }

    fn preferred_partition(&self) -> crate::PartitionKind {
        self.preferred
    }

    fn contains_edge(&self, u: usize, v: usize) -> bool {
        check_node(v, self.len());
        self.neighbor_slice(u).binary_search(&(v as u32)).is_ok()
    }

    fn neighbors(&self, u: usize) -> Vec<usize> {
        self.neighbor_slice(u).iter().map(|&v| v as usize).collect()
    }

    fn name(&self) -> String {
        self.name.clone()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Cycle, Torus2d};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn lowering_preserves_structure() {
        let adj = AdjacencyList::from_edges(4, &[(0, 1), (1, 2), (2, 0), (2, 3)]);
        let csr = adj.to_csr();
        assert_eq!(csr.len(), 4);
        assert_eq!(csr.num_edges(), 4);
        for u in 0..4 {
            assert_eq!(csr.degree(u), adj.degree(u));
            assert_eq!(csr.neighbors(u), adj.neighbors(u));
        }
        assert!(csr.contains_edge(0, 2));
        assert!(!csr.contains_edge(0, 3));
    }

    #[test]
    fn sampling_matches_adjacency_draw_for_draw() {
        // Same sorted neighbour order + same range draw ⇒ identical samples
        // from identical RNG states.
        let adj = AdjacencyList::from_edges(5, &[(0, 1), (0, 2), (0, 4), (1, 3), (3, 4)]);
        let csr = adj.to_csr();
        let mut ra = StdRng::seed_from_u64(9);
        let mut rc = StdRng::seed_from_u64(9);
        for _ in 0..200 {
            for u in 0..5 {
                assert_eq!(
                    adj.sample_partner(u, &mut ra),
                    csr.sample_partner(u, &mut rc)
                );
            }
        }
    }

    #[test]
    fn from_structured_topology() {
        let cycle = Cycle::new(8);
        let csr = Csr::from_topology(&cycle);
        assert_eq!(csr.name(), "cycle");
        for u in 0..8 {
            let mut expect = cycle.neighbors(u);
            expect.sort_unstable();
            assert_eq!(csr.neighbors(u), expect);
        }
        let torus = Torus2d::new(3, 4);
        let csr = Csr::from_topology(&torus);
        assert_eq!(csr.num_edges(), 24);
        assert_eq!(csr.min_degree(), 4);
    }

    #[test]
    fn mono_sampling_agrees_with_dyn() {
        let csr = Csr::from_topology(&Torus2d::new(4, 4));
        let mut ra = StdRng::seed_from_u64(3);
        let mut rb = StdRng::seed_from_u64(3);
        for u in 0..16 {
            let dyn_rng: &mut dyn Rng = &mut ra;
            assert_eq!(
                csr.sample_partner(u, dyn_rng),
                csr.sample_partner_mono(u, &mut rb)
            );
        }
    }

    #[test]
    fn with_name_changes_label() {
        let csr = AdjacencyList::from_edges(2, &[(0, 1)])
            .to_csr()
            .with_name("x");
        assert_eq!(csr.name(), "x");
    }

    #[test]
    #[should_panic(expected = "isolated")]
    fn isolated_node_cannot_sample() {
        let adj = AdjacencyList::from_edges(3, &[(0, 1)]);
        let csr = adj.to_csr();
        let mut rng = StdRng::seed_from_u64(2);
        csr.sample_partner(2, &mut rng);
    }
}
