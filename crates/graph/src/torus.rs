//! The two-dimensional torus grid.

use crate::{check_node, Topology};
use rand::{Rng, RngExt};

/// A `rows × cols` grid with wrap-around edges (a 4-regular torus).
///
/// Node `u` sits at `(u / cols, u % cols)` and neighbours its four axis
/// neighbours modulo the grid dimensions.
///
/// # Examples
///
/// ```
/// use pp_graph::{Torus2d, Topology};
///
/// let g = Torus2d::new(4, 5);
/// assert_eq!(g.len(), 20);
/// assert_eq!(g.degree(7), 4);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Torus2d {
    rows: usize,
    cols: usize,
    /// `ceil(2^64 / cols)` — Lemire's exact division-by-constant constant,
    /// so the hot partner draw replaces the hardware `div` in `u % cols`
    /// with one widening multiply. `0` disables the fast path when the node
    /// count exceeds `u32::MAX` (exactness is only guaranteed below 2³²).
    cols_magic: u64,
}

impl Torus2d {
    /// Creates a torus with `rows` rows and `cols` columns.
    ///
    /// # Panics
    ///
    /// Panics if either dimension is below 3 (smaller wrap-arounds collapse
    /// into multi-edges).
    pub fn new(rows: usize, cols: usize) -> Self {
        assert!(
            rows >= 3 && cols >= 3,
            "torus needs both dimensions >= 3, got {rows}x{cols}"
        );
        let cols_magic = if rows
            .checked_mul(cols)
            .is_some_and(|n| n <= u32::MAX as usize)
        {
            u64::MAX / cols as u64 + 1
        } else {
            0
        };
        Torus2d {
            rows,
            cols,
            cols_magic,
        }
    }

    /// `u % cols` via reciprocal multiplication (exact for node counts
    /// below 2³², which [`new`](Self::new) verified).
    #[inline]
    fn mod_cols(&self, u: usize) -> usize {
        if self.cols_magic != 0 {
            let q = ((self.cols_magic as u128 * u as u128) >> 64) as usize;
            u - q * self.cols
        } else {
            u % self.cols
        }
    }

    #[inline]
    fn sample_impl<R: Rng>(&self, u: usize, rng: &mut R) -> usize {
        let n = self.rows * self.cols;
        check_node(u, n);
        // Same four directions (and order) as `neighbor_in_direction`, in
        // division-free index arithmetic: row moves are ± cols with a wrap
        // test, column moves need only `u % cols`.
        match rng.random_index(4) {
            0 => {
                let v = u + self.cols;
                if v >= n {
                    v - n
                } else {
                    v
                }
            }
            1 => {
                if u >= self.cols {
                    u - self.cols
                } else {
                    u + n - self.cols
                }
            }
            2 => {
                if self.mod_cols(u) + 1 == self.cols {
                    u + 1 - self.cols
                } else {
                    u + 1
                }
            }
            _ => {
                if self.mod_cols(u) == 0 {
                    u + self.cols - 1
                } else {
                    u - 1
                }
            }
        }
    }

    /// Branch-free partner draw for the turbo engine: direction from the
    /// top two bits of `bits`, all four candidate neighbours computed and
    /// selected with conditional moves (`select_unpredictable` — a random
    /// 4-way *branch* would mispredict ~3 steps in 4, which is exactly
    /// what makes the exact sampler slow on the batch path).
    #[inline]
    fn sample_turbo_impl(&self, u: usize, bits: u64) -> usize {
        let n = self.rows * self.cols;
        check_node(u, n);
        let dir = (bits >> 62) as usize;
        let c = self.mod_cols(u);
        use std::hint::select_unpredictable as sel;
        let sign = dir & 1 == 0;
        // Both arms of each select are evaluated eagerly, so untaken
        // subtractions must wrap instead of underflowing.
        // Row move: u ± cols mod n, as one selected offset + one wrap.
        let row = {
            let v = u + sel(sign, self.cols, n - self.cols);
            sel(v >= n, v.wrapping_sub(n), v)
        };
        // Column move: c ± 1 mod cols, re-anchored to u's row.
        let col = {
            let cc = c + sel(sign, 1, self.cols - 1);
            u - c + sel(cc >= self.cols, cc.wrapping_sub(self.cols), cc)
        };
        sel(dir & 2 == 0, row, col)
    }

    /// Grid coordinates of node `u`.
    pub fn coords(&self, u: usize) -> (usize, usize) {
        check_node(u, self.len());
        (u / self.cols, u % self.cols)
    }

    /// Node index at grid coordinates `(r, c)`.
    ///
    /// # Panics
    ///
    /// Panics if `r >= rows` or `c >= cols`.
    pub fn node(&self, r: usize, c: usize) -> usize {
        assert!(
            r < self.rows && c < self.cols,
            "coords ({r},{c}) out of range"
        );
        r * self.cols + c
    }

    #[inline]
    fn neighbor_in_direction(&self, u: usize, dir: usize) -> usize {
        let (r, c) = (u / self.cols, u % self.cols);
        match dir {
            0 => self.node((r + 1) % self.rows, c),
            1 => self.node((r + self.rows - 1) % self.rows, c),
            2 => self.node(r, (c + 1) % self.cols),
            _ => self.node(r, (c + self.cols - 1) % self.cols),
        }
    }
}

impl Topology for Torus2d {
    fn len(&self) -> usize {
        self.rows * self.cols
    }

    fn degree(&self, u: usize) -> usize {
        check_node(u, self.len());
        4
    }

    fn sample_partner(&self, u: usize, mut rng: &mut dyn Rng) -> usize {
        self.sample_impl(u, &mut rng)
    }

    fn sample_partner_mono<R: Rng>(&self, u: usize, rng: &mut R) -> usize {
        self.sample_impl(u, rng)
    }

    fn sample_partner_turbo(&self, u: usize, bits: u64) -> usize {
        self.sample_turbo_impl(u, bits)
    }

    /// Lane-batched draws share `u`, so everything `sample_turbo_impl`
    /// derives from `u` alone — `u mod cols` and the four neighbour
    /// candidates — is computed once here; each lane is then a two-bit
    /// index into the candidate table (no division, no select chain),
    /// which is what lets the vec engine's partner phase vectorize.
    #[inline]
    fn sample_partners_turbo(&self, u: usize, bits: &[u64], out: &mut [usize]) {
        assert_eq!(bits.len(), out.len());
        let n = self.rows * self.cols;
        check_node(u, n);
        let c = self.mod_cols(u);
        // The candidates in `sample_turbo_impl`'s direction order:
        // row+ (dir 0), row− (dir 1), col+ (dir 2), col− (dir 3).
        let rp = {
            let v = u + self.cols;
            if v >= n {
                v - n
            } else {
                v
            }
        };
        let rm = {
            let v = u + n - self.cols;
            if v >= n {
                v - n
            } else {
                v
            }
        };
        let cp = {
            let cc = c + 1;
            u - c + if cc >= self.cols { cc - self.cols } else { cc }
        };
        let cm = {
            let cc = c + self.cols - 1;
            u - c + if cc >= self.cols { cc - self.cols } else { cc }
        };
        let cand = [rp, rm, cp, cm];
        for (o, &b) in out.iter_mut().zip(bits) {
            *o = cand[(b >> 62) as usize];
        }
    }

    fn contains_edge(&self, u: usize, v: usize) -> bool {
        check_node(u, self.len());
        check_node(v, self.len());
        (0..4).any(|d| self.neighbor_in_direction(u, d) == v)
    }

    fn neighbors(&self, u: usize) -> Vec<usize> {
        check_node(u, self.len());
        (0..4).map(|d| self.neighbor_in_direction(u, d)).collect()
    }

    fn name(&self) -> String {
        format!("torus{}x{}", self.rows, self.cols)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn coords_roundtrip() {
        let g = Torus2d::new(3, 4);
        for u in 0..g.len() {
            let (r, c) = g.coords(u);
            assert_eq!(g.node(r, c), u);
        }
    }

    #[test]
    fn four_distinct_neighbors() {
        let g = Torus2d::new(4, 4);
        for u in 0..g.len() {
            let mut ns = g.neighbors(u);
            ns.sort_unstable();
            ns.dedup();
            assert_eq!(ns.len(), 4, "node {u}");
            assert!(!ns.contains(&u));
        }
    }

    #[test]
    fn wraparound_edges_exist() {
        let g = Torus2d::new(3, 3);
        // (0,0) and (0,2) are horizontal wrap neighbours.
        assert!(g.contains_edge(g.node(0, 0), g.node(0, 2)));
        // (0,0) and (2,0) are vertical wrap neighbours.
        assert!(g.contains_edge(g.node(0, 0), g.node(2, 0)));
        assert!(!g.contains_edge(g.node(0, 0), g.node(1, 1)));
    }

    #[test]
    fn sampling_stays_adjacent() {
        let g = Torus2d::new(5, 3);
        let mut rng = StdRng::seed_from_u64(11);
        for _ in 0..200 {
            let v = g.sample_partner(7, &mut rng);
            assert!(g.contains_edge(7, v));
        }
    }

    #[test]
    #[should_panic(expected = ">= 3")]
    fn rejects_thin_torus() {
        Torus2d::new(2, 5);
    }

    #[test]
    fn fast_sampling_covers_exactly_the_neighbors() {
        // The division-free sampler must reach the same 4 nodes as the
        // reference `neighbor_in_direction` arithmetic, at every position
        // (interior, row wrap, column wrap).
        let g = Torus2d::new(5, 7);
        let mut rng = StdRng::seed_from_u64(3);
        for u in 0..g.len() {
            let mut seen = std::collections::HashSet::new();
            for _ in 0..120 {
                seen.insert(g.sample_partner(u, &mut rng));
            }
            let expect: std::collections::HashSet<usize> = g.neighbors(u).into_iter().collect();
            assert_eq!(seen, expect, "node {u}");
        }
    }

    #[test]
    fn reciprocal_mod_matches_hardware_mod() {
        for (r, c) in [(3usize, 3usize), (5, 7), (64, 1000), (250, 400)] {
            let g = Torus2d::new(r, c);
            for u in (0..r * c).step_by(((r * c) / 97).max(1)) {
                assert_eq!(g.mod_cols(u), u % c, "u={u}, cols={c}");
            }
        }
    }
}
