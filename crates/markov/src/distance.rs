//! Distances between probability distributions.

/// Total-variation distance `½ Σ_i |p_i − q_i|` between two distributions on
/// the same finite state space.
///
/// # Examples
///
/// ```
/// use pp_markov::total_variation;
///
/// assert_eq!(total_variation(&[1.0, 0.0], &[0.0, 1.0]), 1.0);
/// assert_eq!(total_variation(&[0.5, 0.5], &[0.5, 0.5]), 0.0);
/// ```
///
/// # Panics
///
/// Panics if the slices have different lengths or contain non-finite values.
pub fn total_variation(p: &[f64], q: &[f64]) -> f64 {
    assert_eq!(p.len(), q.len(), "distribution length mismatch");
    assert!(
        p.iter().chain(q.iter()).all(|x| x.is_finite()),
        "non-finite probability"
    );
    0.5 * p.iter().zip(q).map(|(a, b)| (a - b).abs()).sum::<f64>()
}

/// Maximum absolute coordinate difference `max_i |p_i − q_i|` (ℓ∞ distance).
///
/// # Panics
///
/// Panics if the slices have different lengths.
pub fn linf_distance(p: &[f64], q: &[f64]) -> f64 {
    assert_eq!(p.len(), q.len(), "distribution length mismatch");
    p.iter()
        .zip(q)
        .map(|(a, b)| (a - b).abs())
        .fold(0.0, f64::max)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tv_is_symmetric() {
        let p = [0.2, 0.3, 0.5];
        let q = [0.5, 0.25, 0.25];
        assert!((total_variation(&p, &q) - total_variation(&q, &p)).abs() < 1e-15);
    }

    #[test]
    fn tv_bounds() {
        let p = [0.1, 0.9];
        let q = [0.9, 0.1];
        let d = total_variation(&p, &q);
        assert!((0.0..=1.0).contains(&d));
        assert!((d - 0.8).abs() < 1e-12);
    }

    #[test]
    fn tv_triangle_inequality() {
        let p = [0.2, 0.8];
        let q = [0.5, 0.5];
        let r = [0.9, 0.1];
        assert!(
            total_variation(&p, &r) <= total_variation(&p, &q) + total_variation(&q, &r) + 1e-15
        );
    }

    #[test]
    fn linf_examples() {
        assert_eq!(linf_distance(&[0.0, 1.0], &[0.25, 0.75]), 0.25);
        assert_eq!(linf_distance(&[0.5], &[0.5]), 0.0);
    }

    #[test]
    #[should_panic(expected = "length mismatch")]
    fn rejects_mismatch() {
        total_variation(&[1.0], &[0.5, 0.5]);
    }
}
