//! Biased-random-walk absorption formulas (the paper's Theorem A.1,
//! after Feller XIV.2–3).
//!
//! Phase 1 of the paper's analysis couples protocol statistics (`a(t)`, the
//! number of light agents; under-represented colour counts) with biased
//! random walks on `[0, b]` and reads off hitting probabilities and times
//! from these classical formulas. The experiment harness uses them to
//! cross-check the coupling numerically.

use rand::{Rng, RngExt};

/// A gambler's-ruin walk on `{0, 1, …, b}` with up-probability `p`,
/// absorbing barriers at `0` and `b`, started at `s`.
///
/// # Examples
///
/// ```
/// use pp_markov::GamblersRuin;
///
/// let walk = GamblersRuin::new(0.6, 10, 5);
/// // Upward bias ⇒ much likelier to end at b than at 0.
/// assert!(walk.prob_hit_top() > 0.85);
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct GamblersRuin {
    p: f64,
    b: u64,
    s: u64,
}

impl GamblersRuin {
    /// Creates a walk with up-probability `p`, barrier `b`, start `s`.
    ///
    /// # Panics
    ///
    /// Panics if `p ∉ (0, 1)`, `p == ½` (the unbiased case has different
    /// formulas and is not needed by the paper), `b == 0`, or `s > b`.
    pub fn new(p: f64, b: u64, s: u64) -> Self {
        assert!(p > 0.0 && p < 1.0, "p must be in (0, 1), got {p}");
        assert!(p != 0.5, "formulas require a biased walk (p != 1/2)");
        assert!(b > 0, "barrier must be positive");
        assert!(s <= b, "start {s} beyond barrier {b}");
        GamblersRuin { p, b, s }
    }

    /// `ρ = (1 − p)/p`, the classical odds ratio.
    fn rho(&self) -> f64 {
        (1.0 - self.p) / self.p
    }

    /// Probability the walk is absorbed at `b` (Theorem A.1):
    /// `(ρ^s − 1) / (ρ^b − 1)`.
    pub fn prob_hit_top(&self) -> f64 {
        if self.s == self.b {
            return 1.0;
        }
        if self.s == 0 {
            return 0.0;
        }
        let rho = self.rho();
        (rho.powf(self.s as f64) - 1.0) / (rho.powf(self.b as f64) - 1.0)
    }

    /// Probability the walk is absorbed at `0`: `(ρ^b − ρ^s) / (ρ^b − 1)`.
    pub fn prob_hit_bottom(&self) -> f64 {
        1.0 - self.prob_hit_top()
    }

    /// Expected number of steps until absorption (Theorem A.1):
    /// `s/(1−2p) − (b/(1−2p)) · (1 − ρ^s)/(1 − ρ^b)`.
    pub fn expected_absorption_time(&self) -> f64 {
        let rho = self.rho();
        let denom = 1.0 - 2.0 * self.p;
        self.s as f64 / denom
            - (self.b as f64 / denom) * (1.0 - rho.powf(self.s as f64))
                / (1.0 - rho.powf(self.b as f64))
    }

    /// Simulates the walk once; returns `(absorbed_at_top, steps)`.
    ///
    /// Used by tests to validate the closed forms.
    pub fn simulate(&self, rng: &mut dyn Rng) -> (bool, u64) {
        let mut x = self.s;
        let mut steps = 0u64;
        while x != 0 && x != self.b {
            if rng.random_bool(self.p) {
                x += 1;
            } else {
                x -= 1;
            }
            steps += 1;
        }
        (x == self.b, steps)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn absorption_probs_sum_to_one() {
        let w = GamblersRuin::new(0.3, 20, 7);
        assert!((w.prob_hit_top() + w.prob_hit_bottom() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn boundary_starts() {
        assert_eq!(GamblersRuin::new(0.6, 10, 10).prob_hit_top(), 1.0);
        assert_eq!(GamblersRuin::new(0.6, 10, 0).prob_hit_top(), 0.0);
    }

    #[test]
    fn upward_bias_raises_top_probability() {
        let down = GamblersRuin::new(0.4, 10, 5).prob_hit_top();
        let up = GamblersRuin::new(0.6, 10, 5).prob_hit_top();
        assert!(up > 0.5 && down < 0.5);
        // Symmetry: P_top(p, s) = P_bottom(1-p, b-s).
        let mirror = GamblersRuin::new(0.6, 10, 5).prob_hit_bottom();
        assert!((down - mirror).abs() < 1e-12);
    }

    #[test]
    fn formulas_match_simulation() {
        let w = GamblersRuin::new(0.55, 12, 4);
        let mut rng = StdRng::seed_from_u64(42);
        let trials = 20_000;
        let mut tops = 0u32;
        let mut total_steps = 0u64;
        for _ in 0..trials {
            let (top, steps) = w.simulate(&mut rng);
            tops += u32::from(top);
            total_steps += steps;
        }
        let emp_top = tops as f64 / trials as f64;
        let emp_time = total_steps as f64 / trials as f64;
        assert!(
            (emp_top - w.prob_hit_top()).abs() < 0.02,
            "empirical {emp_top} vs exact {}",
            w.prob_hit_top()
        );
        assert!(
            (emp_time - w.expected_absorption_time()).abs() / w.expected_absorption_time() < 0.05,
            "empirical {emp_time} vs exact {}",
            w.expected_absorption_time()
        );
    }

    #[test]
    fn strong_bias_makes_escape_exponentially_unlikely() {
        // Lemma 2.1-style use: with upward bias, hitting 0 from the middle
        // is exponentially unlikely in the barrier width.
        let near = GamblersRuin::new(0.6, 10, 5).prob_hit_bottom();
        let far = GamblersRuin::new(0.6, 40, 20).prob_hit_bottom();
        assert!(far < near * near, "far {far}, near {near}");
    }

    #[test]
    fn expected_time_positive_and_bounded() {
        let w = GamblersRuin::new(0.7, 30, 10);
        let t = w.expected_absorption_time();
        assert!(t > 0.0);
        // With strong upward drift, time ≈ distance/drift = 20 / 0.4 = 50.
        assert!((t - 50.0).abs() < 5.0, "t = {t}");
    }

    #[test]
    #[should_panic(expected = "biased")]
    fn rejects_unbiased() {
        GamblersRuin::new(0.5, 10, 5);
    }
}
