//! Chernoff–Hoeffding bounds for Markov chains (the paper's Theorem A.2,
//! after Chung, Lam, Liu, Mitzenmacher 2012).

/// Evaluates the tail bound of Theorem A.2: for an ergodic chain with
/// stationary distribution `π`, (1/8)-mixing time `t_mix`, and hit count
/// `N_i` of state `i` over `t` steps,
///
/// ```text
/// P(|N_i − π_i·t| ≥ δ·π_i·t) ≤ c · exp(−δ²·π_i·t / (72·t_mix))
/// ```
///
/// This function returns the exponential factor with `c = 1`; the paper's
/// constant `c` is absolute and does not affect the shape experiments check.
///
/// # Examples
///
/// ```
/// use pp_markov::chernoff_mc_bound;
///
/// let loose = chernoff_mc_bound(0.1, 0.5, 1_000, 5);
/// let tight = chernoff_mc_bound(0.1, 0.5, 100_000, 5);
/// assert!(tight < loose); // more steps ⇒ sharper concentration
/// ```
///
/// # Panics
///
/// Panics if `delta <= 0`, `pi_i ∉ (0, 1]`, or `t_mix == 0`.
pub fn chernoff_mc_bound(delta: f64, pi_i: f64, t: u64, t_mix: u64) -> f64 {
    assert!(delta > 0.0, "delta must be positive, got {delta}");
    assert!(
        pi_i > 0.0 && pi_i <= 1.0,
        "pi_i must be in (0, 1], got {pi_i}"
    );
    assert!(t_mix > 0, "mixing time must be positive");
    (-delta * delta * pi_i * t as f64 / (72.0 * t_mix as f64)).exp()
}

/// The deviation width `δ·π_i·t` such that the Theorem A.2 bound equals the
/// failure probability `n^{-r}`: solves for the absolute deviation
/// `|N_i − π_i t|` that holds w.p. `1 − n^{-r}`,
/// i.e. `c·sqrt(π_i · t · log n · t_mix)` up to the absolute constant.
///
/// This is the `O(sqrt(π⁺(D_ℓ) · t · log n))` width used at the end of §2.4.
///
/// # Panics
///
/// Panics if arguments are non-positive where positivity is required.
pub fn chernoff_mc_width(pi_i: f64, t: u64, t_mix: u64, n: u64, r: f64) -> f64 {
    assert!(pi_i > 0.0 && pi_i <= 1.0, "pi_i must be in (0, 1]");
    assert!(t_mix > 0, "mixing time must be positive");
    assert!(n >= 2, "population must have at least 2 agents");
    assert!(r > 0.0, "exponent r must be positive");
    // exp(−δ² π t / (72 t_mix)) = n^{−r}  ⇒  δ π t = sqrt(72 r π t t_mix ln n).
    (72.0 * r * pi_i * t as f64 * t_mix as f64 * (n as f64).ln()).sqrt()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bound_decreases_in_t() {
        let b1 = chernoff_mc_bound(0.2, 0.3, 1_000, 10);
        let b2 = chernoff_mc_bound(0.2, 0.3, 10_000, 10);
        assert!(b2 < b1);
    }

    #[test]
    fn bound_decreases_in_delta() {
        let small = chernoff_mc_bound(0.01, 0.3, 10_000, 10);
        let large = chernoff_mc_bound(0.5, 0.3, 10_000, 10);
        assert!(large < small);
    }

    #[test]
    fn bound_increases_in_tmix() {
        let fast = chernoff_mc_bound(0.1, 0.3, 10_000, 2);
        let slow = chernoff_mc_bound(0.1, 0.3, 10_000, 50);
        assert!(slow > fast);
    }

    #[test]
    fn bound_in_unit_interval() {
        let b = chernoff_mc_bound(0.1, 0.5, 100, 5);
        assert!(b > 0.0 && b <= 1.0);
    }

    #[test]
    fn width_scales_like_sqrt_t() {
        let w1 = chernoff_mc_width(0.5, 10_000, 5, 1024, 2.0);
        let w4 = chernoff_mc_width(0.5, 40_000, 5, 1024, 2.0);
        assert!((w4 / w1 - 2.0).abs() < 1e-9);
    }

    #[test]
    fn width_and_bound_are_consistent() {
        // Plugging the width back into the bound yields exactly n^{-r}.
        let (pi, t, tmix, n, r) = (0.4, 50_000u64, 7u64, 4096u64, 3.0);
        let width = chernoff_mc_width(pi, t, tmix, n, r);
        let delta = width / (pi * t as f64);
        let bound = chernoff_mc_bound(delta, pi, t, tmix);
        let target = (n as f64).powf(-r);
        assert!((bound / target - 1.0).abs() < 1e-9, "{bound} vs {target}");
    }
}
