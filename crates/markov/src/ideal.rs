//! The ideal single-agent chain `P` of §2.4 and its `±err` perturbations.

use crate::TransitionMatrix;

/// The `2k`-state Markov chain `M` of §2.4 describing one agent's trajectory
/// when the population is in perfect equilibrium.
///
/// States are the dark colours `D_1..D_k` (indices `0..k`) and the light
/// colours `L_1..L_k` (indices `k..2k`). For a population of `n` agents with
/// weights `w_1..w_k`, `w = Σ w_i`, the transition probabilities are
///
/// ```text
/// P(L_j, D_i) = w_i / ((1 + w)·n)            for all i, j
/// P(L_i, L_i) = 1 − w / ((1 + w)·n)
/// P(D_i, L_i) = 1 / ((1 + w)·n)
/// P(D_i, D_i) = 1 − 1 / ((1 + w)·n)
/// ```
///
/// with stationary distribution `π(D_i) = w_i/(1+w)` and
/// `π(L_i) = (w_i/w)/(1+w)` (the paper's Eqs. (18)–(19)).
///
/// # Examples
///
/// ```
/// use pp_markov::{stationary_solve, IdealChain};
///
/// let chain = IdealChain::new(&[1.0, 1.0, 2.0], 500);
/// let exact = chain.exact_stationary();
/// let solved = stationary_solve(chain.matrix());
/// for (a, b) in exact.iter().zip(&solved) {
///     assert!((a - b).abs() < 1e-9);
/// }
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct IdealChain {
    weights: Vec<f64>,
    total_weight: f64,
    n: usize,
    matrix: TransitionMatrix,
}

impl IdealChain {
    /// Builds the ideal chain for the given colour weights and population
    /// size `n`.
    ///
    /// # Panics
    ///
    /// Panics if no weights are given, any weight is below 1 (the paper
    /// requires `w_i ≥ 1`), or `n < 2`.
    pub fn new(weights: &[f64], n: usize) -> Self {
        assert!(!weights.is_empty(), "need at least one colour");
        assert!(
            weights.iter().all(|&w| w.is_finite() && w >= 1.0),
            "all weights must be finite and >= 1"
        );
        assert!(n >= 2, "population needs at least 2 agents");
        let k = weights.len();
        let w: f64 = weights.iter().sum();
        let denom = (1.0 + w) * n as f64;
        let mut rows = vec![vec![0.0; 2 * k]; 2 * k];
        for i in 0..k {
            // Dark state D_i.
            rows[i][k + i] = 1.0 / denom;
            rows[i][i] = 1.0 - 1.0 / denom;
        }
        for j in 0..k {
            // Light state L_j.
            for i in 0..k {
                rows[k + j][i] = weights[i] / denom;
            }
            rows[k + j][k + j] = 1.0 - w / denom;
        }
        IdealChain {
            weights: weights.to_vec(),
            total_weight: w,
            n,
            matrix: TransitionMatrix::from_rows(rows),
        }
    }

    /// Number of colours `k`.
    pub fn num_colours(&self) -> usize {
        self.weights.len()
    }

    /// State index of the dark shade of colour `i`.
    ///
    /// # Panics
    ///
    /// Panics if `i >= k`.
    pub fn dark(&self, i: usize) -> usize {
        assert!(i < self.weights.len(), "colour {i} out of range");
        i
    }

    /// State index of the light shade of colour `i`.
    ///
    /// # Panics
    ///
    /// Panics if `i >= k`.
    pub fn light(&self, i: usize) -> usize {
        assert!(i < self.weights.len(), "colour {i} out of range");
        self.weights.len() + i
    }

    /// The underlying transition matrix.
    pub fn matrix(&self) -> &TransitionMatrix {
        &self.matrix
    }

    /// The closed-form stationary distribution
    /// `π(D_i) = w_i/(1+w)`, `π(L_i) = (w_i/w)/(1+w)`.
    pub fn exact_stationary(&self) -> Vec<f64> {
        let k = self.weights.len();
        let w = self.total_weight;
        let mut pi = vec![0.0; 2 * k];
        for (i, &wi) in self.weights.iter().enumerate() {
            pi[i] = wi / (1.0 + w);
            pi[k + i] = (wi / w) / (1.0 + w);
        }
        pi
    }

    /// Stationary probability of holding colour `i` in **either** shade:
    /// `π(D_i) + π(L_i) = (w_i/w)·(1 + w)/(1 + w) = w_i/w`.
    ///
    /// This is the fairness target of Definition 1.1(2).
    pub fn colour_occupancy(&self, i: usize) -> f64 {
        let pi = self.exact_stationary();
        pi[self.dark(i)] + pi[self.light(i)]
    }

    /// The perturbed chain `P⁺_{D_ℓ}` of §2.4 that stochastically speeds up
    /// visits to `D_target` by `err` per transition (and `k·err` on the
    /// `L_i → D_target` transitions), used to majorise the real trajectory.
    ///
    /// Pass a negative `err` to obtain `P⁻_{D_ℓ}`.
    ///
    /// # Panics
    ///
    /// Panics if `target >= k` or `|err|` is large enough to push any entry
    /// outside `[0, 1]`.
    pub fn perturbed_toward_dark(&self, target: usize, err: f64) -> TransitionMatrix {
        let k = self.weights.len();
        assert!(target < k, "target colour {target} out of range");
        let p = &self.matrix;
        let mut rows: Vec<Vec<f64>> = (0..2 * k).map(|i| p.row(i).to_vec()).collect();
        // Dark rows.
        for i in 0..k {
            if i == target {
                rows[i][k + i] -= err; // P(D_ℓ, L_ℓ) − err: leave the target more slowly.
                rows[i][i] += err;
            } else {
                rows[i][k + i] += err; // P(D_i, L_i) + err: leave other darks faster.
                rows[i][i] -= err;
            }
        }
        // Light rows: tilt the colour choice toward the target.
        for j in 0..k {
            rows[k + j][target] += k as f64 * err;
            for (i, entry) in rows[k + j].iter_mut().enumerate().take(k) {
                if i != target {
                    *entry -= err;
                }
            }
            rows[k + j][k + j] -= err;
        }
        TransitionMatrix::from_rows(rows)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{mixing_time, stationary_solve, total_variation};

    #[test]
    fn exact_stationary_matches_solver() {
        let chain = IdealChain::new(&[1.0, 2.0, 4.0], 64);
        let exact = chain.exact_stationary();
        let solved = stationary_solve(chain.matrix());
        assert!(total_variation(&exact, &solved) < 1e-9);
    }

    #[test]
    fn stationary_values_match_paper_formulas() {
        let chain = IdealChain::new(&[1.0, 3.0], 100);
        let pi = chain.exact_stationary();
        // w = 4: π(D_1) = 1/5, π(D_2) = 3/5, π(L_1) = 1/20, π(L_2) = 3/20.
        assert!((pi[chain.dark(0)] - 0.2).abs() < 1e-12);
        assert!((pi[chain.dark(1)] - 0.6).abs() < 1e-12);
        assert!((pi[chain.light(0)] - 0.05).abs() < 1e-12);
        assert!((pi[chain.light(1)] - 0.15).abs() < 1e-12);
    }

    #[test]
    fn colour_occupancy_is_fair_share() {
        let weights = [1.0, 2.0, 5.0];
        let w: f64 = weights.iter().sum();
        let chain = IdealChain::new(&weights, 256);
        for (i, &wi) in weights.iter().enumerate() {
            assert!((chain.colour_occupancy(i) - wi / w).abs() < 1e-12);
        }
    }

    #[test]
    fn chain_is_ergodic() {
        let chain = IdealChain::new(&[1.0, 1.0], 10);
        assert!(chain.matrix().is_ergodic());
    }

    #[test]
    fn chain_mixes() {
        // Small n keeps self-loop mass moderate so mixing is fast enough to compute.
        let chain = IdealChain::new(&[1.0, 1.0], 4);
        assert!(mixing_time(chain.matrix(), 0.125, 2_000).is_some());
    }

    #[test]
    fn perturbed_chain_is_stochastic_and_biased() {
        let chain = IdealChain::new(&[1.0, 2.0], 50);
        let err = 1e-4;
        let plus = chain.perturbed_toward_dark(0, err);
        let minus = chain.perturbed_toward_dark(0, -err);
        let pi_plus = stationary_solve(&plus);
        let pi_minus = stationary_solve(&minus);
        let pi = chain.exact_stationary();
        let d = chain.dark(0);
        assert!(pi_plus[d] > pi[d], "{} vs {}", pi_plus[d], pi[d]);
        assert!(pi_minus[d] < pi[d], "{} vs {}", pi_minus[d], pi[d]);
    }

    #[test]
    fn perturbation_shift_is_order_err() {
        // π⁺(D_ℓ) = π(D_ℓ) + O(err), §2.4.
        let chain = IdealChain::new(&[1.0, 1.0, 2.0], 64);
        let pi = chain.exact_stationary();
        for &err in &[1e-5, 1e-4] {
            let plus = stationary_solve(&chain.perturbed_toward_dark(1, err));
            let shift = (plus[1] - pi[1]).abs();
            // The shift is O(err · n): bounded by a constant times err times n.
            assert!(shift < 200.0 * err * 64.0, "err {err}: shift {shift}");
        }
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn rejects_bad_target() {
        IdealChain::new(&[1.0, 1.0], 10).perturbed_toward_dark(5, 1e-6);
    }

    #[test]
    #[should_panic(expected = ">= 1")]
    fn rejects_small_weights() {
        IdealChain::new(&[0.5, 1.0], 10);
    }
}
