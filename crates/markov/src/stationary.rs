//! Stationary distributions.

use crate::{total_variation, TransitionMatrix};

/// Computes the stationary distribution by directly solving the linear
/// system `πP = π`, `Σπ = 1` with Gaussian elimination (partial pivoting).
///
/// Exact up to floating-point error; `O(n³)`. Requires the chain to have a
/// unique stationary distribution (irreducible); for reducible chains the
/// solver may return one of several solutions or fail.
///
/// # Examples
///
/// ```
/// use pp_markov::{stationary_solve, TransitionMatrix};
///
/// let p = TransitionMatrix::from_rows(vec![vec![0.9, 0.1], vec![0.5, 0.5]]);
/// let pi = stationary_solve(&p);
/// // Detailed balance: pi = (5/6, 1/6).
/// assert!((pi[0] - 5.0 / 6.0).abs() < 1e-12);
/// ```
///
/// # Panics
///
/// Panics if the linear system is numerically singular.
pub fn stationary_solve(p: &TransitionMatrix) -> Vec<f64> {
    let n = p.num_states();
    // Build A = Pᵀ − I, then replace the last equation with Σπ = 1.
    // Solve A π = b with b = (0, …, 0, 1).
    let mut a = vec![0.0; n * n];
    for i in 0..n {
        for j in 0..n {
            a[i * n + j] = p.prob(j, i) - if i == j { 1.0 } else { 0.0 };
        }
    }
    for j in 0..n {
        a[(n - 1) * n + j] = 1.0;
    }
    let mut b = vec![0.0; n];
    b[n - 1] = 1.0;

    // Gaussian elimination with partial pivoting.
    for col in 0..n {
        let pivot_row = (col..n)
            .max_by(|&r1, &r2| {
                a[r1 * n + col]
                    .abs()
                    .partial_cmp(&a[r2 * n + col].abs())
                    .expect("finite matrix")
            })
            .expect("non-empty range");
        let pivot = a[pivot_row * n + col];
        assert!(
            pivot.abs() > 1e-12,
            "singular system: chain may be reducible (pivot {pivot} at column {col})"
        );
        if pivot_row != col {
            for j in 0..n {
                a.swap(col * n + j, pivot_row * n + j);
            }
            b.swap(col, pivot_row);
        }
        for row in (col + 1)..n {
            let factor = a[row * n + col] / a[col * n + col];
            if factor == 0.0 {
                continue;
            }
            for j in col..n {
                a[row * n + j] -= factor * a[col * n + j];
            }
            b[row] -= factor * b[col];
        }
    }
    // Back substitution.
    let mut x = vec![0.0; n];
    for row in (0..n).rev() {
        let mut acc = b[row];
        for j in (row + 1)..n {
            acc -= a[row * n + j] * x[j];
        }
        x[row] = acc / a[row * n + row];
    }
    // Clean tiny negative round-off and renormalise.
    for v in &mut x {
        if *v < 0.0 && *v > -1e-9 {
            *v = 0.0;
        }
    }
    let sum: f64 = x.iter().sum();
    assert!(sum > 0.0, "stationary solve produced a zero vector");
    for v in &mut x {
        *v /= sum;
    }
    x
}

/// Computes the stationary distribution by power iteration from the uniform
/// distribution, stopping when successive iterates are within `tol` in total
/// variation or after `max_iters` steps.
///
/// Slower convergence than [`stationary_solve`] but `O(n²)` per step and
/// robust; the test-suite cross-validates the two.
///
/// # Panics
///
/// Panics if `tol <= 0` or convergence is not reached within `max_iters`.
pub fn stationary_power(p: &TransitionMatrix, tol: f64, max_iters: usize) -> Vec<f64> {
    assert!(tol > 0.0, "tolerance must be positive");
    let n = p.num_states();
    let mut mu = vec![1.0 / n as f64; n];
    for _ in 0..max_iters {
        // Half-lazy step damps period-2 oscillation without moving the fixed point.
        let next_raw = p.step_distribution(&mu);
        let next: Vec<f64> = next_raw
            .iter()
            .zip(&mu)
            .map(|(a, b)| 0.5 * a + 0.5 * b)
            .collect();
        if total_variation(&next, &mu) < tol {
            return next;
        }
        mu = next;
    }
    panic!("power iteration did not converge within {max_iters} iterations");
}

#[cfg(test)]
mod tests {
    use super::*;

    fn random_ish_chain(n: usize) -> TransitionMatrix {
        // Deterministic pseudo-random rows normalised to 1.
        let mut rows = Vec::with_capacity(n);
        let mut x = 12345u64;
        for _ in 0..n {
            let mut row: Vec<f64> = (0..n)
                .map(|_| {
                    x = x
                        .wrapping_mul(6364136223846793005)
                        .wrapping_add(1442695040888963407);
                    ((x >> 33) as f64 / (1u64 << 31) as f64) + 0.05
                })
                .collect();
            let s: f64 = row.iter().sum();
            for v in &mut row {
                *v /= s;
            }
            rows.push(row);
        }
        TransitionMatrix::from_rows(rows)
    }

    #[test]
    fn solve_two_state_exact() {
        let p = TransitionMatrix::from_rows(vec![vec![0.7, 0.3], vec![0.6, 0.4]]);
        // π ∝ (q, p) for the 2-state chain: π0 = 0.6/(0.3+0.6) = 2/3.
        let pi = stationary_solve(&p);
        assert!((pi[0] - 2.0 / 3.0).abs() < 1e-12);
        assert!((pi[1] - 1.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn solve_is_fixed_point() {
        let p = random_ish_chain(6);
        let pi = stationary_solve(&p);
        let stepped = p.step_distribution(&pi);
        assert!(total_variation(&pi, &stepped) < 1e-10);
    }

    #[test]
    fn power_matches_solve() {
        let p = random_ish_chain(5);
        let a = stationary_solve(&p);
        let b = stationary_power(&p, 1e-12, 100_000);
        assert!(total_variation(&a, &b) < 1e-8);
    }

    #[test]
    fn uniform_chain_has_uniform_stationary() {
        let n = 4;
        let p = TransitionMatrix::from_rows(vec![vec![0.25; 4]; 4]);
        let pi = stationary_solve(&p);
        for &v in &pi {
            assert!((v - 1.0 / n as f64).abs() < 1e-12);
        }
    }

    #[test]
    fn stationary_sums_to_one() {
        let p = random_ish_chain(8);
        let pi = stationary_solve(&p);
        assert!((pi.iter().sum::<f64>() - 1.0).abs() < 1e-12);
        assert!(pi.iter().all(|&v| v >= 0.0));
    }
}
