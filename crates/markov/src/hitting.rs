//! Expected hitting times via the fundamental-matrix linear system.
//!
//! The paper's Phase-1 argument reads expected absorption times off the
//! closed forms of Theorem A.1 (birth–death chains). This module provides
//! the general tool: for any finite chain and target set `T`, the expected
//! hitting times `h(i) = E[inf{t : X_t ∈ T} | X_0 = i]` solve
//!
//! ```text
//! h(i) = 0                       for i ∈ T,
//! h(i) = 1 + Σ_j P(i,j)·h(j)    otherwise,
//! ```
//!
//! a linear system solved here by Gaussian elimination. The tests
//! cross-check against the gambler's-ruin closed form and simulation.

use crate::TransitionMatrix;

/// Expected number of steps to first reach any state in `targets`, from
/// every start state (`0.0` on the targets themselves).
///
/// Returns `None` if some state cannot reach the target set (the system is
/// singular — the hitting time is infinite).
///
/// # Examples
///
/// ```
/// use pp_markov::{hitting_times, TransitionMatrix};
///
/// // Lazy walk on {0, 1, 2} drifting right.
/// let p = TransitionMatrix::from_rows(vec![
///     vec![0.5, 0.5, 0.0],
///     vec![0.0, 0.5, 0.5],
///     vec![0.0, 0.0, 1.0],
/// ]);
/// let h = hitting_times(&p, &[2]).unwrap();
/// assert_eq!(h[2], 0.0);
/// assert!((h[1] - 2.0).abs() < 1e-9); // geometric(1/2) mean
/// assert!((h[0] - 4.0).abs() < 1e-9);
/// ```
///
/// # Panics
///
/// Panics if `targets` is empty or names an out-of-range state.
pub fn hitting_times(p: &TransitionMatrix, targets: &[usize]) -> Option<Vec<f64>> {
    assert!(!targets.is_empty(), "need at least one target state");
    let n = p.num_states();
    let mut is_target = vec![false; n];
    for &t in targets {
        assert!(t < n, "target state {t} out of range");
        is_target[t] = true;
    }
    // Transient states, in order.
    let transient: Vec<usize> = (0..n).filter(|&i| !is_target[i]).collect();
    let m = transient.len();
    if m == 0 {
        return Some(vec![0.0; n]);
    }
    let index_of: std::collections::HashMap<usize, usize> = transient
        .iter()
        .enumerate()
        .map(|(pos, &state)| (state, pos))
        .collect();

    // Solve (I − Q) h = 1 where Q is the transient-to-transient block.
    let mut a = vec![0.0; m * m];
    let mut b = vec![1.0; m];
    for (row, &i) in transient.iter().enumerate() {
        for (col, &j) in transient.iter().enumerate() {
            a[row * m + col] = (if row == col { 1.0 } else { 0.0 }) - p.prob(i, j);
        }
    }
    // Gaussian elimination with partial pivoting.
    for col in 0..m {
        let pivot_row = (col..m).max_by(|&r1, &r2| {
            a[r1 * m + col]
                .abs()
                .partial_cmp(&a[r2 * m + col].abs())
                .expect("finite")
        })?;
        if a[pivot_row * m + col].abs() < 1e-12 {
            return None; // target unreachable from some state
        }
        if pivot_row != col {
            for j in 0..m {
                a.swap(col * m + j, pivot_row * m + j);
            }
            b.swap(col, pivot_row);
        }
        for row in (col + 1)..m {
            let factor = a[row * m + col] / a[col * m + col];
            if factor == 0.0 {
                continue;
            }
            for j in col..m {
                a[row * m + j] -= factor * a[col * m + j];
            }
            b[row] -= factor * b[col];
        }
    }
    let mut x = vec![0.0; m];
    for row in (0..m).rev() {
        let mut acc = b[row];
        for j in (row + 1)..m {
            acc -= a[row * m + j] * x[j];
        }
        x[row] = acc / a[row * m + row];
    }
    if x.iter().any(|v| !v.is_finite() || *v < -1e-9) {
        return None;
    }

    let mut h = vec![0.0; n];
    for (state, &pos) in &index_of {
        h[*state] = x[pos];
    }
    Some(h)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::GamblersRuin;
    use crate::Walk;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    /// Builds the gambler's-ruin chain on {0..=b} with up-probability p.
    fn ruin_chain(p: f64, b: usize) -> TransitionMatrix {
        let n = b + 1;
        let mut rows = vec![vec![0.0; n]; n];
        rows[0][0] = 1.0;
        rows[b][b] = 1.0;
        for i in 1..b {
            rows[i][i + 1] = p;
            rows[i][i - 1] = 1.0 - p;
        }
        TransitionMatrix::from_rows(rows)
    }

    #[test]
    fn matches_gamblers_ruin_closed_form() {
        let (p, b, s) = (0.6, 12usize, 5usize);
        let chain = ruin_chain(p, b);
        let h = hitting_times(&chain, &[0, b]).unwrap();
        let exact = GamblersRuin::new(p, b as u64, s as u64).expected_absorption_time();
        assert!(
            (h[s] - exact).abs() < 1e-9,
            "fundamental matrix {} vs Feller closed form {exact}",
            h[s]
        );
    }

    #[test]
    fn matches_simulation() {
        let p = TransitionMatrix::from_rows(vec![
            vec![0.2, 0.5, 0.3],
            vec![0.4, 0.1, 0.5],
            vec![0.3, 0.3, 0.4],
        ]);
        let h = hitting_times(&p, &[2]).unwrap();
        let mut rng = StdRng::seed_from_u64(5);
        let trials = 50_000;
        let mut total = 0u64;
        for _ in 0..trials {
            // Simulate until hitting state 2 from state 0.
            let w = Walk::simulate(&p, 0, 1_000, &mut rng);
            let hit = w
                .states()
                .iter()
                .position(|&s| s == 2)
                .expect("hit within 1000");
            total += hit as u64;
        }
        let emp = total as f64 / trials as f64;
        assert!(
            (emp - h[0]).abs() < 0.05,
            "empirical {emp} vs exact {}",
            h[0]
        );
    }

    #[test]
    fn unreachable_target_is_none() {
        let p = TransitionMatrix::from_rows(vec![
            vec![1.0, 0.0], // absorbing at 0
            vec![0.5, 0.5],
        ]);
        assert!(hitting_times(&p, &[1]).is_none());
    }

    #[test]
    fn target_states_have_zero_time() {
        let p = TransitionMatrix::from_rows(vec![vec![0.5, 0.5], vec![0.5, 0.5]]);
        let h = hitting_times(&p, &[0]).unwrap();
        assert_eq!(h[0], 0.0);
        assert!((h[1] - 2.0).abs() < 1e-9);
    }

    #[test]
    fn all_states_target_is_all_zero() {
        let p = TransitionMatrix::from_rows(vec![vec![0.5, 0.5], vec![0.5, 0.5]]);
        assert_eq!(hitting_times(&p, &[0, 1]).unwrap(), vec![0.0, 0.0]);
    }

    #[test]
    fn ideal_chain_hitting_time_scales_with_n() {
        // Reaching the light shade of a heavy colour takes longer for
        // larger populations (each transition has probability Θ(1/n)).
        use crate::IdealChain;
        let h_small = {
            let c = IdealChain::new(&[1.0, 2.0], 50);
            hitting_times(c.matrix(), &[c.light(1)]).unwrap()[c.dark(1)]
        };
        let h_large = {
            let c = IdealChain::new(&[1.0, 2.0], 500);
            hitting_times(c.matrix(), &[c.light(1)]).unwrap()[c.dark(1)]
        };
        assert!(h_large > 5.0 * h_small, "{h_small} -> {h_large}");
    }
}
