//! Finite Markov chains for the Diversification paper's §2.4 analysis.
//!
//! The paper proves **fairness** by approximating the trajectory of a single
//! agent with a `2k`-state Markov chain `P` describing the system in
//! "perfect equilibrium", then sandwiching the real trajectory between two
//! perturbed chains `P⁺` and `P⁻` and applying a Chernoff bound for Markov
//! chains (their Theorem A.2). This crate implements every piece of that
//! machinery from scratch:
//!
//! * [`TransitionMatrix`] — dense row-stochastic matrices with structural
//!   checks (irreducibility, period);
//! * [`stationary`] — stationary distributions via direct linear solve and
//!   power iteration (cross-validated in tests);
//! * [`total_variation`] / [`mixing_time`] — distance and mixing estimates;
//! * [`walk`] — trajectory simulation, hit counts, and empirical transition
//!   frequencies;
//! * [`gambler`] — the biased-random-walk absorption formulas of their
//!   Theorem A.1 (Feller XIV.2–3), used in the Phase-1 analysis;
//! * [`ideal`] — the equilibrium chain `P` of §2.4 for a given weight
//!   vector, its exact stationary distribution, and the `±err`
//!   perturbations `P⁺`/`P⁻`;
//! * [`chernoff`] — the hit-count concentration bound of Theorem A.2.
//!
//! # Examples
//!
//! ```
//! use pp_markov::ideal::IdealChain;
//!
//! // Colours with weights 1 and 3 (w = 4).
//! let chain = IdealChain::new(&[1.0, 3.0], 100);
//! let pi = chain.exact_stationary();
//! // π(D_2) = w_2 / (1 + w) = 3/5.
//! assert!((pi[chain.dark(1)] - 0.6).abs() < 1e-12);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod chernoff;
pub mod distance;
pub mod gambler;
pub mod hitting;
pub mod ideal;
pub mod matrix;
pub mod mixing;
pub mod stationary;
pub mod walk;

pub use chernoff::chernoff_mc_bound;
pub use distance::total_variation;
pub use gambler::GamblersRuin;
pub use hitting::hitting_times;
pub use ideal::IdealChain;
pub use matrix::TransitionMatrix;
pub use mixing::mixing_time;
pub use stationary::{stationary_power, stationary_solve};
pub use walk::Walk;
