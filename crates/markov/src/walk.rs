//! Trajectory simulation, hit counts, and empirical transition frequencies.

use crate::TransitionMatrix;
use rand::{Rng, RngExt};

/// A simulated trajectory of a finite Markov chain.
///
/// Used by the fairness experiment (t9): simulate the ideal chain `P` of
/// §2.4, count hits per state, and compare against both the stationary
/// distribution and the hit counts of real agents in the protocol.
///
/// # Examples
///
/// ```
/// use pp_markov::{TransitionMatrix, Walk};
/// use rand::{rngs::StdRng, SeedableRng};
///
/// let p = TransitionMatrix::from_rows(vec![vec![0.5, 0.5], vec![0.5, 0.5]]);
/// let mut rng = StdRng::seed_from_u64(1);
/// let walk = Walk::simulate(&p, 0, 1_000, &mut rng);
/// assert_eq!(walk.len(), 1_001); // includes the start state
/// let hits = walk.hit_counts(2);
/// assert_eq!(hits[0] + hits[1], 1_001);
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Walk {
    states: Vec<usize>,
}

impl Walk {
    /// Simulates `steps` transitions starting from `start`, recording the
    /// start state and every subsequent state.
    ///
    /// # Panics
    ///
    /// Panics if `start` is out of range.
    pub fn simulate(p: &TransitionMatrix, start: usize, steps: usize, rng: &mut dyn Rng) -> Self {
        assert!(start < p.num_states(), "start state out of range");
        let mut states = Vec::with_capacity(steps + 1);
        let mut cur = start;
        states.push(cur);
        for _ in 0..steps {
            cur = sample_row(p.row(cur), rng);
            states.push(cur);
        }
        Walk { states }
    }

    /// Wraps an externally recorded state sequence (e.g. one agent's states
    /// extracted from a protocol run).
    ///
    /// # Panics
    ///
    /// Panics if the sequence is empty.
    pub fn from_states(states: Vec<usize>) -> Self {
        assert!(
            !states.is_empty(),
            "a walk must contain at least the start state"
        );
        Walk { states }
    }

    /// Number of recorded states (steps + 1).
    pub fn len(&self) -> usize {
        self.states.len()
    }

    /// Returns `true` if the walk is empty (never happens for constructed walks).
    pub fn is_empty(&self) -> bool {
        self.states.is_empty()
    }

    /// The recorded state sequence.
    pub fn states(&self) -> &[usize] {
        &self.states
    }

    /// Number of visits to each of `num_states` states, `N_i(t)` in the
    /// paper's notation.
    ///
    /// # Panics
    ///
    /// Panics if any recorded state is `>= num_states`.
    pub fn hit_counts(&self, num_states: usize) -> Vec<u64> {
        let mut counts = vec![0u64; num_states];
        for &s in &self.states {
            assert!(s < num_states, "state {s} out of range {num_states}");
            counts[s] += 1;
        }
        counts
    }

    /// Fraction of time spent in each state.
    pub fn occupancy(&self, num_states: usize) -> Vec<f64> {
        let counts = self.hit_counts(num_states);
        let total = self.states.len() as f64;
        counts.into_iter().map(|c| c as f64 / total).collect()
    }

    /// Empirical transition frequencies: entry `(i, j)` is
    /// `#transitions i→j / #visits to i` (among non-terminal visits).
    /// States never left get a self-loop row so the result is a valid
    /// transition matrix.
    pub fn empirical_transitions(&self, num_states: usize) -> TransitionMatrix {
        let mut counts = vec![0u64; num_states * num_states];
        let mut outs = vec![0u64; num_states];
        for w in self.states.windows(2) {
            let (i, j) = (w[0], w[1]);
            assert!(i < num_states && j < num_states, "state out of range");
            counts[i * num_states + j] += 1;
            outs[i] += 1;
        }
        let rows: Vec<Vec<f64>> = (0..num_states)
            .map(|i| {
                if outs[i] == 0 {
                    let mut row = vec![0.0; num_states];
                    row[i] = 1.0;
                    row
                } else {
                    (0..num_states)
                        .map(|j| counts[i * num_states + j] as f64 / outs[i] as f64)
                        .collect()
                }
            })
            .collect();
        TransitionMatrix::from_rows(rows)
    }
}

/// Samples an index from a probability row by inverse-CDF scan.
fn sample_row(row: &[f64], rng: &mut dyn Rng) -> usize {
    let u: f64 = rng.random_range(0.0..1.0);
    let mut acc = 0.0;
    for (j, &p) in row.iter().enumerate() {
        acc += p;
        if u < acc {
            return j;
        }
    }
    // Floating-point slack: return the last state with positive probability.
    row.iter()
        .rposition(|&p| p > 0.0)
        .expect("row has positive mass")
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn chain() -> TransitionMatrix {
        TransitionMatrix::from_rows(vec![vec![0.8, 0.2], vec![0.3, 0.7]])
    }

    #[test]
    fn walk_lengths() {
        let mut rng = StdRng::seed_from_u64(0);
        let w = Walk::simulate(&chain(), 0, 100, &mut rng);
        assert_eq!(w.len(), 101);
        assert!(!w.is_empty());
        assert_eq!(w.states()[0], 0);
    }

    #[test]
    fn hit_counts_total() {
        let mut rng = StdRng::seed_from_u64(1);
        let w = Walk::simulate(&chain(), 1, 500, &mut rng);
        let hits = w.hit_counts(2);
        assert_eq!(hits.iter().sum::<u64>(), 501);
    }

    #[test]
    fn occupancy_approaches_stationary() {
        let p = chain();
        let pi = crate::stationary_solve(&p);
        let mut rng = StdRng::seed_from_u64(2);
        let w = Walk::simulate(&p, 0, 200_000, &mut rng);
        let occ = w.occupancy(2);
        for (o, s) in occ.iter().zip(&pi) {
            assert!((o - s).abs() < 0.01, "occ {o} vs pi {s}");
        }
    }

    #[test]
    fn empirical_transitions_recover_matrix() {
        let p = chain();
        let mut rng = StdRng::seed_from_u64(3);
        let w = Walk::simulate(&p, 0, 300_000, &mut rng);
        let emp = w.empirical_transitions(2);
        for i in 0..2 {
            for j in 0..2 {
                assert!(
                    (emp.prob(i, j) - p.prob(i, j)).abs() < 0.01,
                    "({i},{j}): {} vs {}",
                    emp.prob(i, j),
                    p.prob(i, j)
                );
            }
        }
    }

    #[test]
    fn unvisited_state_gets_self_loop() {
        let w = Walk::from_states(vec![0, 0, 0]);
        let emp = w.empirical_transitions(2);
        assert_eq!(emp.prob(1, 1), 1.0);
        assert_eq!(emp.prob(0, 0), 1.0);
    }

    #[test]
    fn deterministic_row_sampling() {
        let mut rng = StdRng::seed_from_u64(4);
        for _ in 0..100 {
            assert_eq!(sample_row(&[0.0, 1.0, 0.0], &mut rng), 1);
        }
    }

    #[test]
    #[should_panic(expected = "at least the start")]
    fn from_states_rejects_empty() {
        Walk::from_states(vec![]);
    }
}
