//! Mixing-time estimation.

use crate::{stationary_solve, total_variation, TransitionMatrix};

/// The `ε`-mixing time: the smallest `t` such that from **every** starting
/// state, the `t`-step distribution is within total variation `ε` of the
/// stationary distribution.
///
/// Computed by iterated matrix powers (doubling would change constants;
/// linear stepping keeps the exact hitting `t`). `O(t · n³)` — intended for
/// the small (`2k`-state) chains of §2.4, where the paper invokes the
/// finiteness of the mixing time before applying Theorem A.2.
///
/// Returns `None` if the bound is not reached within `max_t` steps.
///
/// # Examples
///
/// ```
/// use pp_markov::{mixing_time, TransitionMatrix};
///
/// let p = TransitionMatrix::from_rows(vec![vec![0.5, 0.5], vec![0.5, 0.5]]);
/// // Mixes in one step.
/// assert_eq!(mixing_time(&p, 0.25, 10), Some(1));
/// ```
///
/// # Panics
///
/// Panics if `eps` is not in `(0, 1)` or the chain has no unique stationary
/// distribution.
pub fn mixing_time(p: &TransitionMatrix, eps: f64, max_t: usize) -> Option<usize> {
    assert!(eps > 0.0 && eps < 1.0, "eps must be in (0, 1), got {eps}");
    let pi = stationary_solve(p);
    let n = p.num_states();
    let mut power = p.clone();
    for t in 1..=max_t {
        let worst = (0..n)
            .map(|i| total_variation(power.row(i), &pi))
            .fold(0.0, f64::max);
        if worst <= eps {
            return Some(t);
        }
        if t < max_t {
            power = power.compose(p);
        }
    }
    None
}

/// The worst-case total-variation distance to stationarity after exactly
/// `t` steps, `max_i TV(Pᵗ(i, ·), π)`.
pub fn distance_at(p: &TransitionMatrix, t: usize) -> f64 {
    let pi = stationary_solve(p);
    let mut power = TransitionMatrix::identity(p.num_states());
    for _ in 0..t {
        power = power.compose(p);
    }
    (0..p.num_states())
        .map(|i| total_variation(power.row(i), &pi))
        .fold(0.0, f64::max)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn lazy_flip(alpha: f64) -> TransitionMatrix {
        TransitionMatrix::from_rows(vec![vec![1.0 - alpha, alpha], vec![alpha, 1.0 - alpha]])
    }

    #[test]
    fn faster_chains_mix_faster() {
        let slow = mixing_time(&lazy_flip(0.05), 0.125, 1000).unwrap();
        let fast = mixing_time(&lazy_flip(0.45), 0.125, 1000).unwrap();
        assert!(fast < slow, "fast {fast} slow {slow}");
    }

    #[test]
    fn distance_decreases_with_t() {
        let p = lazy_flip(0.2);
        let d1 = distance_at(&p, 1);
        let d5 = distance_at(&p, 5);
        let d20 = distance_at(&p, 20);
        assert!(d1 >= d5 && d5 >= d20);
        assert!(d20 < 0.01);
    }

    #[test]
    fn timeout_returns_none() {
        // A period-2 chain never mixes.
        let flip = TransitionMatrix::from_rows(vec![vec![0.0, 1.0], vec![1.0, 0.0]]);
        // Its stationary solve still works (uniform), but TV oscillates at 1.
        assert_eq!(mixing_time(&flip, 0.1, 50), None);
    }

    #[test]
    fn mixing_time_is_monotone_in_eps() {
        let p = lazy_flip(0.1);
        let loose = mixing_time(&p, 0.25, 1000).unwrap();
        let tight = mixing_time(&p, 0.01, 1000).unwrap();
        assert!(tight >= loose);
    }
}
