//! Dense row-stochastic transition matrices.

/// A dense row-stochastic matrix over states `0..n`.
///
/// Entry `(i, j)` is the probability of moving from state `i` to state `j`
/// in one step. Construction validates non-negativity and row sums, so every
/// `TransitionMatrix` in the workspace is a genuine Markov chain.
///
/// # Examples
///
/// ```
/// use pp_markov::TransitionMatrix;
///
/// let p = TransitionMatrix::from_rows(vec![
///     vec![0.9, 0.1],
///     vec![0.5, 0.5],
/// ]);
/// assert_eq!(p.num_states(), 2);
/// assert_eq!(p.prob(0, 1), 0.1);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct TransitionMatrix {
    n: usize,
    data: Vec<f64>,
}

/// Tolerance for row-sum validation.
const ROW_SUM_TOL: f64 = 1e-9;

impl TransitionMatrix {
    /// Builds a matrix from explicit rows.
    ///
    /// # Panics
    ///
    /// Panics if the matrix is not square and non-empty, any entry is
    /// negative or non-finite, or any row does not sum to 1 (±1e-9).
    pub fn from_rows(rows: Vec<Vec<f64>>) -> Self {
        let n = rows.len();
        assert!(n > 0, "transition matrix must be non-empty");
        let mut data = Vec::with_capacity(n * n);
        for (i, row) in rows.iter().enumerate() {
            assert_eq!(row.len(), n, "row {i} has length {} != {n}", row.len());
            let mut sum = 0.0;
            for &p in row {
                assert!(
                    p.is_finite() && p >= 0.0,
                    "row {i} contains invalid probability {p}"
                );
                sum += p;
            }
            assert!(
                (sum - 1.0).abs() <= ROW_SUM_TOL,
                "row {i} sums to {sum}, not 1"
            );
            data.extend_from_slice(row);
        }
        TransitionMatrix { n, data }
    }

    /// The identity chain (every state absorbing) on `n` states.
    pub fn identity(n: usize) -> Self {
        assert!(n > 0, "transition matrix must be non-empty");
        let mut data = vec![0.0; n * n];
        for i in 0..n {
            data[i * n + i] = 1.0;
        }
        TransitionMatrix { n, data }
    }

    /// Number of states.
    pub fn num_states(&self) -> usize {
        self.n
    }

    /// Transition probability from `i` to `j`.
    ///
    /// # Panics
    ///
    /// Panics if `i` or `j` is out of range.
    pub fn prob(&self, i: usize, j: usize) -> f64 {
        assert!(i < self.n && j < self.n, "state index out of range");
        self.data[i * self.n + j]
    }

    /// Row `i` as a slice (the distribution of the next state from `i`).
    pub fn row(&self, i: usize) -> &[f64] {
        assert!(i < self.n, "state index out of range");
        &self.data[i * self.n..(i + 1) * self.n]
    }

    /// One step of the chain applied to a distribution: returns `μP`.
    ///
    /// # Panics
    ///
    /// Panics if `mu.len() != num_states()`.
    pub fn step_distribution(&self, mu: &[f64]) -> Vec<f64> {
        assert_eq!(mu.len(), self.n, "distribution length mismatch");
        let mut out = vec![0.0; self.n];
        for (i, &m) in mu.iter().enumerate() {
            if m == 0.0 {
                continue;
            }
            for (j, o) in out.iter_mut().enumerate() {
                *o += m * self.data[i * self.n + j];
            }
        }
        out
    }

    /// Matrix product `self · other` (two-step chain).
    ///
    /// # Panics
    ///
    /// Panics if the dimensions differ.
    pub fn compose(&self, other: &TransitionMatrix) -> TransitionMatrix {
        assert_eq!(self.n, other.n, "dimension mismatch");
        let n = self.n;
        let mut data = vec![0.0; n * n];
        for i in 0..n {
            for k in 0..n {
                let p = self.data[i * n + k];
                if p == 0.0 {
                    continue;
                }
                for j in 0..n {
                    data[i * n + j] += p * other.data[k * n + j];
                }
            }
        }
        TransitionMatrix { n, data }
    }

    /// Returns `true` if every state can reach every other state through
    /// positive-probability transitions (single communicating class).
    pub fn is_irreducible(&self) -> bool {
        (0..self.n).all(|s| self.reachable_from(s).iter().all(|&r| r))
    }

    fn reachable_from(&self, src: usize) -> Vec<bool> {
        let mut seen = vec![false; self.n];
        let mut stack = vec![src];
        seen[src] = true;
        while let Some(u) = stack.pop() {
            for (v, visited) in seen.iter_mut().enumerate() {
                if !*visited && self.data[u * self.n + v] > 0.0 {
                    *visited = true;
                    stack.push(v);
                }
            }
        }
        seen
    }

    /// The period of an irreducible chain: the gcd of all cycle lengths.
    /// A period of 1 means aperiodic (hence ergodic, for irreducible chains).
    ///
    /// # Panics
    ///
    /// Panics if the chain is not irreducible.
    pub fn period(&self) -> usize {
        assert!(
            self.is_irreducible(),
            "period is defined for irreducible chains"
        );
        // BFS from state 0; gcd of (level(u) + 1 - level(v)) over edges.
        let mut level = vec![usize::MAX; self.n];
        let mut queue = std::collections::VecDeque::new();
        level[0] = 0;
        queue.push_back(0);
        let mut g: usize = 0;
        while let Some(u) = queue.pop_front() {
            for v in 0..self.n {
                if self.data[u * self.n + v] <= 0.0 {
                    continue;
                }
                if level[v] == usize::MAX {
                    level[v] = level[u] + 1;
                    queue.push_back(v);
                } else {
                    let diff = (level[u] + 1).abs_diff(level[v]);
                    g = gcd(g, diff);
                }
            }
        }
        if g == 0 {
            // No non-tree closed walk found; can only happen for the
            // single-state chain.
            1
        } else {
            g
        }
    }

    /// Returns `true` if the chain is irreducible and aperiodic.
    pub fn is_ergodic(&self) -> bool {
        self.is_irreducible() && self.period() == 1
    }
}

fn gcd(a: usize, b: usize) -> usize {
    if b == 0 {
        a
    } else {
        gcd(b, a % b)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn two_state() -> TransitionMatrix {
        TransitionMatrix::from_rows(vec![vec![0.9, 0.1], vec![0.5, 0.5]])
    }

    #[test]
    fn builds_and_reads() {
        let p = two_state();
        assert_eq!(p.num_states(), 2);
        assert_eq!(p.prob(1, 0), 0.5);
        assert_eq!(p.row(0), &[0.9, 0.1]);
    }

    #[test]
    fn step_distribution_conserves_mass() {
        let p = two_state();
        let mu = p.step_distribution(&[1.0, 0.0]);
        assert!((mu.iter().sum::<f64>() - 1.0).abs() < 1e-12);
        assert_eq!(mu, vec![0.9, 0.1]);
    }

    #[test]
    fn compose_is_two_steps() {
        let p = two_state();
        let p2 = p.compose(&p);
        let direct = p.step_distribution(&p.step_distribution(&[1.0, 0.0]));
        let via = p2.step_distribution(&[1.0, 0.0]);
        for (a, b) in direct.iter().zip(&via) {
            assert!((a - b).abs() < 1e-12);
        }
    }

    #[test]
    fn identity_is_absorbing() {
        let p = TransitionMatrix::identity(3);
        assert_eq!(p.prob(1, 1), 1.0);
        assert_eq!(p.prob(1, 2), 0.0);
        assert!(!p.is_irreducible());
    }

    #[test]
    fn irreducibility() {
        assert!(two_state().is_irreducible());
        let absorbing = TransitionMatrix::from_rows(vec![vec![1.0, 0.0], vec![0.5, 0.5]]);
        assert!(!absorbing.is_irreducible());
    }

    #[test]
    fn period_of_cycle_is_two() {
        let flip = TransitionMatrix::from_rows(vec![vec![0.0, 1.0], vec![1.0, 0.0]]);
        assert_eq!(flip.period(), 2);
        assert!(!flip.is_ergodic());
    }

    #[test]
    fn lazy_chain_is_ergodic() {
        assert!(two_state().is_ergodic());
    }

    #[test]
    #[should_panic(expected = "sums to")]
    fn rejects_non_stochastic() {
        TransitionMatrix::from_rows(vec![vec![0.5, 0.4], vec![0.5, 0.5]]);
    }

    #[test]
    #[should_panic(expected = "invalid probability")]
    fn rejects_negative() {
        TransitionMatrix::from_rows(vec![vec![1.1, -0.1], vec![0.5, 0.5]]);
    }
}
