//! Property-based tests for the Markov-chain substrate.

use pp_markov::{
    stationary_power, stationary_solve, total_variation, GamblersRuin, IdealChain,
    TransitionMatrix, Walk,
};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

/// Strategy: a random row-stochastic matrix with strictly positive entries
/// (hence irreducible and aperiodic).
fn positive_chain(n: usize) -> impl Strategy<Value = TransitionMatrix> {
    prop::collection::vec(prop::collection::vec(0.05f64..1.0, n), n).prop_map(|raw| {
        let rows: Vec<Vec<f64>> = raw
            .into_iter()
            .map(|row| {
                let s: f64 = row.iter().sum();
                row.into_iter().map(|v| v / s).collect()
            })
            .collect();
        TransitionMatrix::from_rows(rows)
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn solve_gives_fixed_point(p in positive_chain(5)) {
        let pi = stationary_solve(&p);
        prop_assert!((pi.iter().sum::<f64>() - 1.0).abs() < 1e-9);
        let stepped = p.step_distribution(&pi);
        prop_assert!(total_variation(&pi, &stepped) < 1e-8);
    }

    #[test]
    fn power_and_solve_agree(p in positive_chain(4)) {
        let a = stationary_solve(&p);
        let b = stationary_power(&p, 1e-12, 200_000);
        prop_assert!(total_variation(&a, &b) < 1e-6);
    }

    #[test]
    fn positive_chains_are_ergodic(p in positive_chain(4)) {
        prop_assert!(p.is_ergodic());
    }

    #[test]
    fn composition_preserves_stochasticity(p in positive_chain(4), q in positive_chain(4)) {
        let r = p.compose(&q);
        for i in 0..4 {
            let sum: f64 = r.row(i).iter().sum();
            prop_assert!((sum - 1.0).abs() < 1e-9);
            prop_assert!(r.row(i).iter().all(|&v| v >= -1e-12));
        }
    }

    #[test]
    fn step_distribution_preserves_mass(p in positive_chain(5), seed in 0u64..1000) {
        // Random start distribution.
        let mut rng = StdRng::seed_from_u64(seed);
        use rand::RngExt;
        let mut mu: Vec<f64> = (0..5).map(|_| rng.random_range(0.01..1.0)).collect();
        let s: f64 = mu.iter().sum();
        for v in &mut mu { *v /= s; }
        let out = p.step_distribution(&mu);
        prop_assert!((out.iter().sum::<f64>() - 1.0).abs() < 1e-9);
    }

    #[test]
    fn gambler_probabilities_valid(
        p in 0.05f64..0.95,
        b in 2u64..40,
        s_frac in 0.0f64..1.0,
    ) {
        prop_assume!((p - 0.5).abs() > 1e-3);
        let s = ((b as f64 * s_frac) as u64).min(b);
        let w = GamblersRuin::new(p, b, s);
        let top = w.prob_hit_top();
        prop_assert!((0.0..=1.0).contains(&top));
        prop_assert!((top + w.prob_hit_bottom() - 1.0).abs() < 1e-9);
    }

    #[test]
    fn gambler_top_prob_monotone_in_start(p in 0.55f64..0.9, b in 3u64..30) {
        let mut prev = 0.0;
        for s in 0..=b {
            let cur = GamblersRuin::new(p, b, s).prob_hit_top();
            prop_assert!(cur >= prev - 1e-12, "s={s}: {cur} < {prev}");
            prev = cur;
        }
    }

    #[test]
    fn ideal_chain_stationary_is_exact(
        k in 1usize..6,
        n in 2usize..500,
        seed in 0u64..100,
    ) {
        let mut rng = StdRng::seed_from_u64(seed);
        use rand::RngExt;
        let weights: Vec<f64> = (0..k).map(|_| rng.random_range(1.0..8.0)).collect();
        let chain = IdealChain::new(&weights, n);
        let exact = chain.exact_stationary();
        prop_assert!((exact.iter().sum::<f64>() - 1.0).abs() < 1e-9);
        let solved = stationary_solve(chain.matrix());
        prop_assert!(total_variation(&exact, &solved) < 1e-7);
    }

    #[test]
    fn ideal_colour_occupancy_sums_to_one(k in 1usize..6, seed in 0u64..100) {
        let mut rng = StdRng::seed_from_u64(seed);
        use rand::RngExt;
        let weights: Vec<f64> = (0..k).map(|_| rng.random_range(1.0..5.0)).collect();
        let chain = IdealChain::new(&weights, 64);
        let total: f64 = (0..k).map(|i| chain.colour_occupancy(i)).sum();
        prop_assert!((total - 1.0).abs() < 1e-9);
    }

    #[test]
    fn walk_hits_sum_to_length(p in positive_chain(4), steps in 0usize..2000, seed in 0u64..100) {
        let mut rng = StdRng::seed_from_u64(seed);
        let w = Walk::simulate(&p, 0, steps, &mut rng);
        let hits = w.hit_counts(4);
        prop_assert_eq!(hits.iter().sum::<u64>() as usize, steps + 1);
    }

    #[test]
    fn empirical_transitions_are_stochastic(p in positive_chain(3), seed in 0u64..100) {
        let mut rng = StdRng::seed_from_u64(seed);
        let w = Walk::simulate(&p, 0, 500, &mut rng);
        let emp = w.empirical_transitions(3);
        for i in 0..3 {
            let s: f64 = emp.row(i).iter().sum();
            prop_assert!((s - 1.0).abs() < 1e-9);
        }
    }
}
