//! Adversary-on-the-fast-path contract tests.
//!
//! The `pp-adversary` suite (shocks, schedules, churn, recovery) is
//! generic over `pp_engine::Engine`; this file verifies that the port
//! preserved both equivalence tiers:
//!
//! * **bit-exact tier** — the generic `Simulator` and the
//!   `PackedSimulator` consume shock/churn RNG identically, so a shared
//!   `(engine seed, adversary seed)` pair yields *identical trajectories*
//!   through arbitrary shock schedules and churn streams;
//! * **statistical tier** — the turbo engine's counter-based randomness
//!   must simulate the same *process* under adversarial workloads:
//!   packed-vs-turbo ensembles are compared through the
//!   `pp_stats::EquivalenceSuite` battery (chi-square terminal
//!   histograms, KS on churn-error and recovery-time distributions,
//!   moment checks), for Diversification churn + shock recovery and for
//!   Voter churn (the multi-protocol reset path, `Churn::run_with`), on
//!   the complete graph and the torus.
//!
//! Power is demonstrated by `biased_reset_churn_bug_is_rejected`: a
//! sabotaged run whose churn resets draw colours from `0..k−1` instead
//! of `0..k` — the classic off-by-one range bug a port introduces, which
//! slowly drains the never-reinjected colour — must be rejected at
//! `p < 10⁻⁶`.
//!
//! `PP_EQUIV_SEEDS` (default 48) scales the ensembles; the CI
//! `adversary-smoke` job runs 24. Keep it at 20 or above (below the
//! harness's variance-test floor the moment checks drop out).

use pp_adversary::{error_under_churn, recovery_time, Churn, Schedule, Shock};
use pp_baselines::Voter;
use pp_core::{
    init,
    packed::{config_stats_from_class_counts, pack_state},
    region::GoodSet,
    AgentState, Colour, Diversification, Weights,
};
use pp_engine::{replicate, Engine, PackedSimulator, Simulator, TurboSimulator};
use pp_graph::{Complete, Torus2d};
use pp_stats::EquivalenceSuite;
use rand::rngs::StdRng;
use rand::SeedableRng;

const N: usize = 256;

fn equiv_seeds() -> u64 {
    std::env::var("PP_EQUIV_SEEDS")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(48)
}

fn weights3() -> Weights {
    Weights::uniform(3)
}

// ---------------------------------------------------------------------------
// Bit-exact tier: generic vs packed through shocks and churn.
// ---------------------------------------------------------------------------

#[test]
fn shock_schedule_trajectories_are_bit_exact_generic_vs_packed() {
    // A schedule exercising every shock variant, with real simulation
    // steps between events: the generic and packed engines must agree
    // state-for-state at every observation (they are bit-exact twins, and
    // the adversary consumes its own RNG stream identically on both).
    let w = weights3();
    let schedule = Schedule::new(vec![
        (
            400,
            Shock::AddAgents {
                count: 40,
                state: AgentState::dark(Colour::new(2)),
            },
        ),
        (
            900,
            Shock::InjectColour {
                colour: Colour::new(0),
                recruits: 30,
            },
        ),
        (
            1_500,
            Shock::RetireColour {
                colour: Colour::new(1),
                replacement: Colour::new(2),
            },
        ),
        (2_200, Shock::RemoveAgents { count: 50 }),
    ]);
    for seed in [1u64, 9, 33, 77] {
        let states = init::all_dark_balanced(N, &w);
        let mut generic = Simulator::new(
            Diversification::new(w.clone()),
            Complete::new(N),
            states.clone(),
            seed,
        );
        let mut packed = PackedSimulator::new(
            Diversification::new(w.clone()),
            Complete::new(N),
            &states,
            seed,
        );
        let mut rng_a = StdRng::seed_from_u64(1_000 + seed);
        let mut rng_b = StdRng::seed_from_u64(1_000 + seed);
        let mut snaps: Vec<(u64, Vec<AgentState>)> = Vec::new();
        schedule.run(&mut generic, 3_000, &mut rng_a, |t, e| {
            snaps.push((t, e.snapshot()));
        });
        let mut i = 0;
        schedule.run(&mut packed, 3_000, &mut rng_b, |t, e| {
            let (gt, gstates) = &snaps[i];
            assert_eq!(t, *gt, "seed {seed}: event step diverged");
            assert_eq!(
                &e.snapshot(),
                gstates,
                "seed {seed}: trajectory diverged at step {t}"
            );
            i += 1;
        });
        assert_eq!(i, snaps.len(), "seed {seed}: event count diverged");
    }
}

#[test]
fn churn_trajectories_are_bit_exact_generic_vs_packed_on_torus() {
    // Same contract for churn, on a non-complete topology (the
    // combination the old per-engine code paths could not reach with the
    // generic engine's checker stack).
    let w = weights3();
    for seed in [2u64, 18] {
        let states = init::all_dark_balanced(N, &w);
        let mut generic = Simulator::new(
            Diversification::new(w.clone()),
            Torus2d::new(16, 16),
            states.clone(),
            seed,
        );
        let mut packed = PackedSimulator::new(
            Diversification::new(w.clone()),
            Torus2d::new(16, 16),
            &states,
            seed,
        );
        let churn = Churn::new(32, w.len());
        let mut rng_a = StdRng::seed_from_u64(2_000 + seed);
        let mut rng_b = StdRng::seed_from_u64(2_000 + seed);
        let mut snaps = Vec::new();
        churn.run(&mut generic, 4_000, &mut rng_a, |t, e| {
            snaps.push((t, e.snapshot()));
        });
        let mut i = 0;
        churn.run(&mut packed, 4_000, &mut rng_b, |t, e| {
            assert_eq!((t, e.snapshot()), snaps[i], "seed {seed} diverged");
            i += 1;
        });
        assert_eq!(i, snaps.len());
    }
}

// ---------------------------------------------------------------------------
// Statistical tier: packed vs turbo under adversarial workloads.
// ---------------------------------------------------------------------------

/// One seed's reduced observables for the Diversification battery.
struct DivRecord {
    /// Mean diversity error under churn (the dynamic-equilibrium level).
    churn_err: f64,
    /// Dark fraction at the end of the churn window.
    final_dark: f64,
    /// Probe agent's terminal packed state.
    probe: u32,
    /// Steps to re-enter `E(δ)` after a colour injection (capped).
    recovery: f64,
}

/// Drives one seed of the Diversification churn + shock battery on any
/// engine. `biased_reset` is the sabotage switch for the power test:
/// churn resets draw their colour from `0..k−1` instead of `0..k` (the
/// off-by-one range bug), so colour `k−1` is never reinjected and churn
/// slowly drains it.
fn div_record<E>(mut sim: E, churn_seed: u64, biased_reset: bool) -> DivRecord
where
    E: Engine<State = AgentState>,
{
    let w = weights3();
    let k = w.len();
    let nln = N as f64 * (N as f64).ln();
    sim.run(pp_core::theory::convergence_budget(N, w.total(), 4.0));
    let interval = N as u64 / 16;
    let horizon = (20.0 * nln) as u64;
    let mut churn_rng = StdRng::seed_from_u64(churn_seed);
    let churn_err = if biased_reset {
        // Same loop shape as `error_under_churn`, with the sabotaged
        // reset law spliced in through the generic `run_with` path.
        let churn = Churn::new(interval, k);
        let w_obs = w.clone();
        let mut total = 0.0;
        let mut samples = 0u64;
        churn.run_with(
            &mut sim,
            horizon,
            &mut churn_rng,
            |r| AgentState::dark(Colour::new(rand::RngExt::random_range(r, 0..k - 1))),
            |_, e| {
                let stats = config_stats_from_class_counts(&e.class_counts(), k);
                total += stats.max_diversity_error(&w_obs);
                samples += 1;
            },
        );
        total / samples.max(1) as f64
    } else {
        error_under_churn(&mut sim, &w, interval, horizon, &mut churn_rng)
    };
    let counts = sim.class_counts();
    let stats = config_stats_from_class_counts(&counts, k);
    let final_dark = (0..k).map(|i| stats.dark_count(i)).sum::<usize>() as f64 / N as f64;
    let probe = pack_state(&sim.state(0));
    let good = GoodSet::new(w.clone(), 0.3);
    let budget = pp_core::theory::convergence_budget(N, w.total(), 64.0);
    let mut shock_rng = StdRng::seed_from_u64(9_000 + churn_seed);
    let recovery = recovery_time(
        &mut sim,
        &Shock::InjectColour {
            colour: Colour::new(0),
            recruits: N / 8,
        },
        &good,
        &mut shock_rng,
        budget,
        N as u64 / 4,
    )
    .unwrap_or(budget) as f64;
    DivRecord {
        churn_err,
        final_dark,
        probe,
        recovery,
    }
}

/// Probe-state histogram over `2k` packed words.
fn probe_counts(records: &[DivRecord], categories: usize) -> Vec<u64> {
    let mut counts = vec![0u64; categories];
    for r in records {
        counts[r.probe as usize] += 1;
    }
    counts
}

/// Runs the Diversification battery for one family on packed vs turbo and
/// records it into `suite`. `sabotage` switches the turbo side onto the
/// biased reset law (power test).
fn div_battery<T>(suite: &mut EquivalenceSuite, label: &str, topology: T, sabotage: bool)
where
    T: pp_graph::Topology + Clone,
{
    let w = weights3();
    let seeds = equiv_seeds();
    let packed: Vec<DivRecord> = replicate(0..seeds, |s| {
        let states = init::all_dark_balanced(N, &w);
        let sim = PackedSimulator::new(
            Diversification::new(w.clone()),
            topology.clone(),
            &states,
            3_000 + s,
        );
        div_record(sim, 5_000 + s, false)
    });
    let turbo: Vec<DivRecord> = replicate(0..seeds, |s| {
        let states = init::all_dark_balanced(N, &w);
        let sim = TurboSimulator::<_, _, u8>::new(
            Diversification::new(w.clone()),
            topology.clone(),
            &states,
            700_000 + s,
        );
        div_record(sim, 5_000 + s, sabotage)
    });

    let col =
        |rs: &[DivRecord], f: fn(&DivRecord) -> f64| -> Vec<f64> { rs.iter().map(f).collect() };
    suite.check_moments(
        format!("{label}: churn dynamic-equilibrium error"),
        &col(&packed, |r| r.churn_err),
        &col(&turbo, |r| r.churn_err),
    );
    suite.check_distribution(
        format!("{label}: churn error [KS]"),
        &col(&packed, |r| r.churn_err),
        &col(&turbo, |r| r.churn_err),
    );
    suite.check_moments(
        format!("{label}: post-churn dark fraction"),
        &col(&packed, |r| r.final_dark),
        &col(&turbo, |r| r.final_dark),
    );
    suite.check_counts(
        format!("{label}: post-churn probe-state histogram"),
        &probe_counts(&packed, 2 * weights3().len()),
        &probe_counts(&turbo, 2 * weights3().len()),
    );
    suite.check_distribution(
        format!("{label}: post-shock recovery time"),
        &col(&packed, |r| r.recovery),
        &col(&turbo, |r| r.recovery),
    );
}

#[test]
fn diversification_churn_and_shock_turbo_matches_packed() {
    let mut suite = EquivalenceSuite::new("adversary turbo-vs-packed: diversification", 1e-3);
    div_battery(&mut suite, "div-churn/complete", Complete::new(N), false);
    div_battery(&mut suite, "div-churn/torus", Torus2d::new(16, 16), false);
    suite.assert_pass();
}

/// One seed's observables for the Voter churn battery (multi-protocol
/// path: `Churn::run_with` with a colour-reset law).
fn voter_record<E>(mut sim: E, churn_seed: u64) -> (f64, f64, u32)
where
    E: Engine<State = Colour>,
{
    let k = 4usize;
    let nln = N as f64 * (N as f64).ln();
    let churn = Churn::new(N as u64 / 16, k);
    let mut rng = StdRng::seed_from_u64(churn_seed);
    let horizon = (20.0 * nln) as u64;
    let mut last_alive = 0.0;
    churn.run_with(
        &mut sim,
        horizon,
        &mut rng,
        |r| Colour::new(rand::RngExt::random_range(r, 0..k)),
        |_, e| {
            let counts = e.class_counts();
            last_alive = counts.iter().filter(|&&c| c > 0).count() as f64;
        },
    );
    let counts = sim.class_counts();
    let c0 = counts.first().copied().unwrap_or(0) as f64 / N as f64;
    (c0, last_alive, sim.state(0).index() as u32)
}

#[test]
fn voter_churn_turbo_matches_packed() {
    // Voter + churn is the consensus-vs-diversity tug of war: consensus
    // drifts colours extinct, churn keeps resurrecting them. Both engines
    // must produce the same equilibrium statistics.
    let k = 4usize;
    let seeds = equiv_seeds();
    let mut suite = EquivalenceSuite::new("adversary turbo-vs-packed: voter churn", 1e-3);
    for (name, torus) in [("complete", None), ("torus", Some(Torus2d::new(16, 16)))] {
        let packed: Vec<(f64, f64, u32)> = replicate(0..seeds, |s| {
            let init: Vec<Colour> = (0..N).map(|u| Colour::new(u % k)).collect();
            match &torus {
                None => voter_record(
                    PackedSimulator::new(Voter, Complete::new(N), &init, 40_000 + s),
                    6_000 + s,
                ),
                Some(t) => voter_record(
                    PackedSimulator::new(Voter, *t, &init, 40_000 + s),
                    6_000 + s,
                ),
            }
        });
        let turbo: Vec<(f64, f64, u32)> = replicate(0..seeds, |s| {
            let init: Vec<Colour> = (0..N).map(|u| Colour::new(u % k)).collect();
            match &torus {
                None => voter_record(
                    TurboSimulator::<_, _, u8>::new(Voter, Complete::new(N), &init, 800_000 + s),
                    6_000 + s,
                ),
                Some(t) => voter_record(
                    TurboSimulator::<_, _, u8>::new(Voter, *t, &init, 800_000 + s),
                    6_000 + s,
                ),
            }
        });
        let col = |rs: &[(f64, f64, u32)], i: usize| -> Vec<f64> {
            rs.iter()
                .map(|r| match i {
                    0 => r.0,
                    _ => r.1,
                })
                .collect()
        };
        suite.check_moments(
            format!("voter-churn/{name}: colour-0 fraction"),
            &col(&packed, 0),
            &col(&turbo, 0),
        );
        suite.check_moments(
            format!("voter-churn/{name}: alive colours"),
            &col(&packed, 1),
            &col(&turbo, 1),
        );
        let hist = |rs: &[(f64, f64, u32)]| -> Vec<u64> {
            let mut counts = vec![0u64; k];
            for r in rs {
                counts[r.2 as usize] += 1;
            }
            counts
        };
        suite.check_counts(
            format!("voter-churn/{name}: probe-colour histogram"),
            &hist(&packed),
            &hist(&turbo),
        );
    }
    suite.assert_pass();
}

// ---------------------------------------------------------------------------
// Power: an injected adversary bug must be rejected.
// ---------------------------------------------------------------------------

#[test]
fn biased_reset_churn_bug_is_rejected() {
    // Sabotage: the turbo side's churn resets draw from `0..k−1` instead
    // of `0..k` — the off-by-one range bug a port introduces by
    // miscomputing the reset span. Colour k−1 is then never reinjected
    // while churn keeps overwriting its supporters, so its support drains
    // and the dynamic-equilibrium diversity error balloons; the battery
    // must reject equivalence decisively (p < 10⁻⁶).
    let mut suite = EquivalenceSuite::new("adversary biased-reset churn injection", 1e-3);
    div_battery(
        &mut suite,
        "div-churn/complete [biased reset]",
        Complete::new(N),
        true,
    );
    assert!(
        !suite.passed(),
        "biased churn resets were not detected:\n{}",
        suite.render()
    );
    let min_p = suite
        .failures()
        .iter()
        .map(|(_, r)| r.p_value)
        .fold(f64::INFINITY, f64::min);
    assert!(
        min_p < 1e-6,
        "biased churn resets only rejected at p = {min_p:.3e} (need < 1e-6):\n{}",
        suite.render()
    );
}
