//! Snapshot round-trip gate for the versioned snapshot surface
//! (`Engine::save_snapshot` / `restore_snapshot`): on **every** tier, a
//! run interrupted by save → fresh engine → restore must produce
//! bit-exact final states vs the same run without the interruption —
//! the contract `pp serve` leans on to move jobs across process
//! restarts. Also the fail-closed side: a tampered snapshot is
//! rejected with the engine left untouched, never silently resumed.
//!
//! The baseline deliberately replays the *same run-call slicing* as the
//! interrupted run (`run(c); run(T − c)`): the sequential, turbo, vec,
//! and sharded tiers are slicing-invariant, but the dense tier's τ-leap
//! batch sizing keys off each `run` call's remaining budget, so equal
//! slicing is what isolates the save/restore boundary as the only
//! difference under test.

use pp_core::{init, AgentState, Diversification, Weights};
use pp_dense::DenseEngine;
use pp_engine::{
    Engine, PackedSimulator, ShardedSimulator, Simulator, SnapshotError, TurboSimulator,
    VecSimulator,
};
use pp_graph::{Complete, Cycle, Torus2d};

type DynEngine = Box<dyn Engine<State = AgentState>>;

const K: usize = 3;

fn weights() -> Weights {
    Weights::new(vec![1.0, 1.0, 2.0]).unwrap()
}

type TierBuilder = Box<dyn Fn() -> DynEngine>;

/// A constructor per tier, callable repeatedly to simulate "a fresh
/// process rebuilds the engine from the job spec, then restores".
/// Mixed topologies on purpose: snapshots must work off the complete
/// graph too (cycle for packed, torus for turbo).
fn tier_builders(n: usize, seed: u64) -> Vec<(&'static str, TierBuilder)> {
    let w = weights();
    let states = init::all_dark_single_minority(n, &w);
    let rows = 4;
    let cols = n / rows;
    assert_eq!(rows * cols, n, "pick n divisible by {rows} for the torus");
    let mk = move |f: Box<dyn Fn(Diversification, Vec<AgentState>, u64) -> DynEngine>| {
        let w = w.clone();
        let states = states.clone();
        Box::new(move || f(Diversification::new(w.clone()), states.clone(), seed))
            as Box<dyn Fn() -> DynEngine>
    };
    vec![
        (
            "agent",
            mk(Box::new(move |p, s, seed| {
                Box::new(Simulator::new(p, Complete::new(s.len()), s, seed))
            })),
        ),
        (
            "packed",
            mk(Box::new(move |p, s, seed| {
                Box::new(PackedSimulator::new(p, Cycle::new(s.len()), &s, seed))
            })),
        ),
        (
            "turbo",
            mk(Box::new(move |p, s, seed| {
                Box::new(TurboSimulator::<_, _, u8>::new(
                    p,
                    Torus2d::new(rows, s.len() / rows),
                    &s,
                    seed,
                ))
            })),
        ),
        (
            "sharded",
            mk(Box::new(move |p, s, seed| {
                Box::new(
                    ShardedSimulator::<_, _, u32>::new(p, Complete::new(s.len()), &s, seed)
                        .with_layout(2, 64),
                )
            })),
        ),
        (
            "vec",
            mk(Box::new(move |p, s, seed| {
                Box::new(VecSimulator::<_, _, u8, 4>::from_seed(
                    p,
                    Cycle::new(s.len()),
                    &s,
                    seed,
                ))
            })),
        ),
        (
            "dense",
            mk(Box::new(move |p, s, seed| {
                Box::new(DenseEngine::from_states(p, &s, K, seed))
            })),
        ),
    ]
}

/// Full decoded population — the bit-exactness currency (class counts
/// would already follow from it).
fn fingerprint(e: &DynEngine) -> (u64, Vec<AgentState>, Vec<u64>) {
    (e.step_count(), e.snapshot(), e.class_counts())
}

#[test]
fn save_restore_is_invisible_on_every_tier() {
    let n = 48;
    let total = 4_000u64;
    for seed in [1u64, 7, 23] {
        for (name, build) in tier_builders(n, seed) {
            // Interrupted run: save mid-run (at a clock the tier picks —
            // sharded drains to its block boundary), restore into a
            // freshly built engine, finish.
            let mut first = build();
            first.run(total / 3);
            let snap = first.save_snapshot();
            let c = snap.clock;
            assert!(c >= total / 3, "{name}: clock went backwards");
            let mut resumed = build();
            resumed
                .restore_snapshot(&snap)
                .unwrap_or_else(|e| panic!("{name}: restore rejected a genuine snapshot: {e}"));
            assert_eq!(resumed.step_count(), c, "{name}: clock not restored");
            resumed.run(total - c);

            // Uninterrupted twin with the same run-call slicing.
            let mut baseline = build();
            baseline.run(c);
            baseline.run(total - c);

            assert_eq!(
                fingerprint(&resumed),
                fingerprint(&baseline),
                "{name} seed {seed}: save/restore perturbed the trajectory"
            );
        }
    }
}

#[test]
fn double_resume_from_one_snapshot_is_deterministic() {
    // A snapshot is a value: restoring it twice must yield identical
    // continuations (the serve layer may retry a resume after a crash).
    for (name, build) in tier_builders(48, 11) {
        let mut e = build();
        e.run(500);
        let snap = e.save_snapshot();
        let run_tail = || {
            let mut r = build();
            r.restore_snapshot(&snap).unwrap();
            r.run(700);
            fingerprint(&r)
        };
        assert_eq!(run_tail(), run_tail(), "{name}: resume not a pure function");
    }
}

#[test]
fn tampered_snapshots_are_rejected_not_resumed() {
    for (name, build) in tier_builders(48, 3) {
        let mut e = build();
        e.run(256);
        let snap = e.save_snapshot();
        let mut target = build();
        let before = fingerprint(&target);

        // Wrong tier tag.
        let mut wrong = snap.clone();
        wrong.engine = if name == "turbo" { "agent" } else { "turbo" }.into();
        assert!(
            matches!(
                target.restore_snapshot(&wrong),
                Err(SnapshotError::EngineMismatch { .. })
            ),
            "{name}: foreign tier tag accepted"
        );

        // Wrong protocol.
        let mut wrong = snap.clone();
        wrong.protocol = "voter".into();
        assert!(
            matches!(
                target.restore_snapshot(&wrong),
                Err(SnapshotError::ProtocolMismatch { .. })
            ),
            "{name}: foreign protocol accepted"
        );

        // Truncated aux payload (dense always has aux; for the turbo
        // tier — whose aux is legitimately empty — grow it instead).
        let mut wrong = snap.clone();
        if wrong.aux.is_empty() {
            wrong.aux.push(0);
        } else {
            wrong.aux.pop();
        }
        assert!(
            matches!(
                target.restore_snapshot(&wrong),
                Err(SnapshotError::BadPayload(_))
            ),
            "{name}: corrupted aux accepted"
        );

        // Header population size out of sync with the engine.
        let mut wrong = snap.clone();
        wrong.n += 1;
        assert!(
            matches!(
                target.restore_snapshot(&wrong),
                Err(SnapshotError::SizeMismatch { .. })
            ),
            "{name}: population mismatch accepted"
        );

        // Every rejection left the engine untouched.
        assert_eq!(
            fingerprint(&target),
            before,
            "{name}: a rejected restore mutated the engine"
        );
    }
}

#[test]
fn sharded_snapshot_sits_on_the_block_grid_and_rejects_off_grid_clocks() {
    let w = weights();
    let states = init::all_dark_balanced(64, &w);
    let mut e = ShardedSimulator::<_, _, u32>::new(
        Diversification::new(w.clone()),
        Complete::new(64),
        &states,
        9,
    )
    .with_layout(2, 64);
    e.run(100); // mid-block
    let snap = Engine::save_snapshot(&mut e);
    assert_eq!(snap.clock, 128, "drain must land on the next boundary");
    assert_eq!(
        snap.aux,
        vec![2, 64, pp_engine::ReadMode::Snapshot.aux_word()],
        "layout and read mode must ride in aux"
    );

    let mut off = snap.clone();
    off.clock += 1;
    assert!(
        matches!(
            Engine::restore_snapshot(&mut e, &off),
            Err(SnapshotError::BadPayload(_))
        ),
        "an off-grid clock is the signature of a corrupt sharded snapshot"
    );
}

#[test]
fn vec_snapshot_restores_every_lane() {
    // The Engine surface observes lane 0 only; the snapshot must still
    // carry lanes 1..L or the resumed ensemble would silently fork.
    let w = weights();
    let states = init::all_dark_balanced(32, &w);
    let build = || {
        VecSimulator::<_, _, u8, 4>::from_seed(
            Diversification::new(w.clone()),
            Cycle::new(32),
            &states,
            5,
        )
    };
    let mut first = build();
    VecSimulator::run(&mut first, 400);
    let snap = Engine::save_snapshot(&mut first);
    assert_eq!(snap.states.len(), 32 * 4, "all lanes must be captured");
    let mut resumed = build();
    Engine::restore_snapshot(&mut resumed, &snap).unwrap();
    VecSimulator::run(&mut resumed, 300);
    VecSimulator::run(&mut first, 300);
    for lane in 0..4 {
        assert_eq!(
            resumed.lane_states_packed(lane),
            first.lane_states_packed(lane),
            "lane {lane} diverged after resume"
        );
    }
}
