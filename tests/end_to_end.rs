//! End-to-end integration tests: the paper's three headline properties, each
//! exercised through the full stack (core protocol + engine + graph +
//! checkers).

use population_diversity::prelude::*;

fn converged(n: usize, weights: &Weights, seed: u64) -> Simulator<Diversification, Complete> {
    let states = init::all_dark_balanced(n, weights);
    let mut sim = Simulator::new(
        Diversification::new(weights.clone()),
        Complete::new(n),
        states,
        seed,
    );
    sim.run(population_diversity::core::theory::convergence_budget(
        n,
        weights.total(),
        4.0,
    ));
    sim
}

#[test]
fn diversity_theorem_1_3() {
    // After O(w² n log n) steps every colour fraction is within
    // O(sqrt(log n / n)) of its fair share, and stays there for a window.
    let n = 2_000;
    let weights = Weights::new(vec![1.0, 2.0, 5.0]).unwrap();
    let mut sim = converged(n, &weights, 77);
    let mut checker = DiversityChecker::new(weights.clone(), 6.0);
    let window = (2.0 * n as f64 * (n as f64).ln()) as u64;
    sim.run_observed(window, n as u64, |_, pop| {
        checker.observe(&ConfigStats::from_states(pop.states(), 3));
    });
    assert!(
        checker.holds(),
        "worst diversity error {} exceeds 6·sqrt(ln n / n) = {}",
        checker.worst_error(),
        6.0 * population_diversity::core::theory::diversity_error_scale(n)
    );
}

#[test]
fn equilibrium_eq_7_both_shades() {
    // Theorem 2.13: dark counts ≈ w_i n/(1+w), light counts ≈ (w_i/w) n/(1+w).
    let n = 4_000;
    let weights = Weights::new(vec![1.0, 3.0]).unwrap();
    let sim = converged(n, &weights, 3);
    let stats = ConfigStats::from_states(sim.population().states(), 2);
    let scale = population_diversity::core::theory::phase3_error_scale(n);
    assert!(
        stats.max_dark_equilibrium_error(&weights) < 6.0 * scale,
        "dark error {} vs scale {scale}",
        stats.max_dark_equilibrium_error(&weights)
    );
    assert!(
        stats.max_light_equilibrium_error(&weights) < 6.0 * scale,
        "light error {} vs scale {scale}",
        stats.max_light_equilibrium_error(&weights)
    );
}

#[test]
fn sustainability_over_long_window() {
    let n = 500;
    let weights = Weights::new(vec![1.0, 1.0, 4.0]).unwrap();
    let states = init::all_dark_single_minority(n, &weights);
    let mut sim = Simulator::new(
        Diversification::new(weights.clone()),
        Complete::new(n),
        states,
        9,
    );
    let mut checker = SustainabilityChecker::new();
    for _ in 0..400 {
        sim.run(500);
        checker.observe(
            &ConfigStats::from_states(sim.population().states(), 3),
            sim.step_count(),
        );
    }
    assert!(
        checker.holds(),
        "violation at {:?}",
        checker.first_violation()
    );
    assert!(checker.min_dark_seen() >= 1);
}

#[test]
fn fairness_agents_rotate_through_colours() {
    let n = 150;
    let weights = Weights::new(vec![1.0, 1.0, 2.0]).unwrap();
    let mut sim = converged(n, &weights, 13);
    let mut tracker = FairnessTracker::new(n, 3);
    let snapshots = 6_000;
    for _ in 0..snapshots {
        sim.run(n as u64);
        tracker.record(sim.population().states());
    }
    // Every agent's occupancy of the heavy colour should be near 1/2, and
    // of each light colour near 1/4.
    let dev = tracker.max_deviation(&weights);
    assert!(dev < 0.15, "max fairness deviation {dev}");
}

#[test]
fn adversary_injection_recovers_and_spreads() {
    // Robustness: inject a brand-new colour dark; it must reach a share
    // near its fair share and never die.
    let universe = Weights::uniform(3);
    let n = 400;
    // Colours 0 and 1 split the population; colour 2 absent.
    let mut states = Vec::with_capacity(n);
    for u in 0..n {
        states.push(AgentState::dark(Colour::new(u % 2)));
    }
    let mut sim = Simulator::new(
        Diversification::new(universe.clone()),
        Complete::new(n),
        states,
        21,
    );
    sim.run(100_000);
    let mut rng = <rand::rngs::StdRng as rand::SeedableRng>::seed_from_u64(22);
    apply(
        &Shock::InjectColour {
            colour: Colour::new(2),
            recruits: 5,
        },
        &mut sim,
        &mut rng,
    );
    sim.run(population_diversity::core::theory::convergence_budget(
        n, 3.0, 16.0,
    ));
    let stats = ConfigStats::from_states(sim.population().states(), 3);
    let share = stats.colour_fraction(2);
    assert!(
        (share - 1.0 / 3.0).abs() < 0.12,
        "injected colour share {share} far from 1/3"
    );
}

#[test]
fn derandomised_matches_randomised_equilibrium() {
    let n = 1_000;
    let iw = IntWeights::new(vec![1, 2, 4]).unwrap();
    let weights = iw.to_weights();
    let protocol = DerandomisedDiversification::new(iw);
    let states = init::grey_balanced(n, &protocol);
    let mut sim = Simulator::new(protocol, Complete::new(n), states, 31);
    sim.run(population_diversity::core::theory::convergence_budget(
        n,
        weights.total(),
        4.0,
    ));
    let stats = ConfigStats::from_grey_states(sim.population().states(), 3);
    assert!(
        stats.max_diversity_error(&weights) < 0.1,
        "derandomised error {}",
        stats.max_diversity_error(&weights)
    );
}

#[test]
fn replicated_runs_are_reproducible() {
    // The whole pipeline is deterministic given seeds.
    let run = || {
        let weights = Weights::uniform(3);
        let sim = converged(300, &weights, 1234);
        sim.into_population().into_states()
    };
    assert_eq!(run(), run());
}

#[test]
fn packed_fast_path_full_stack() {
    // The packed engine through the umbrella prelude: Diversification on a
    // torus at a size the generic engine would crawl through in a test,
    // budget 30·n·ln n, landing near the fair shares with every colour
    // alive.
    let n = 16_384;
    let weights = Weights::new(vec![1.0, 1.0, 2.0, 4.0]).unwrap();
    let states = init::all_dark_balanced(n, &weights);
    let mut sim = PackedSimulator::new(
        Diversification::new(weights.clone()),
        Torus2d::new(128, 128),
        &states,
        99,
    );
    sim.run((30.0 * n as f64 * (n as f64).ln()) as u64);
    let stats = population_diversity::core::packed::config_stats_from_packed(
        sim.states_packed(),
        weights.len(),
    );
    assert!(
        stats.max_diversity_error(&weights) < 0.1,
        "packed torus error {}",
        stats.max_diversity_error(&weights)
    );
    assert!(stats.all_colours_alive());
}

#[test]
fn packed_sweep_grid_full_stack() {
    // A miniature of the t10 sweep: (topology × seed) cells through the
    // work-stealing grid, CSR for one family, arithmetic for the other.
    let weights = Weights::uniform(3);
    let n = 256;
    let states = init::all_dark_balanced(n, &weights);
    let grid = sweep_grid(2, &[5, 6, 7], |job, seed| {
        let run = |mut sim: PackedSimulator<Diversification, Csr>| {
            sim.run(100_000);
            population_diversity::core::packed::config_stats_from_packed(sim.states_packed(), 3)
                .max_diversity_error(&weights)
        };
        let topo = if job == 0 {
            Csr::from_topology(&Complete::new(n))
        } else {
            Csr::from_topology(&Cycle::new(n))
        };
        run(PackedSimulator::new(
            Diversification::new(weights.clone()),
            topo,
            &states,
            seed,
        ))
    });
    assert_eq!(grid.len(), 2);
    assert_eq!(grid[0].len(), 3);
    // Complete mixes at least as well as the cycle on average.
    let mean = |row: &[f64]| row.iter().sum::<f64>() / row.len() as f64;
    assert!(mean(&grid[0]) <= mean(&grid[1]) + 0.05);
}
