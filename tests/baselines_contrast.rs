//! Integration contrast tests: the consensus baselines do what they are
//! built for (kill diversity); Diversification does the opposite; the
//! trivial global-sampling strawman fails robustness.

use population_diversity::prelude::*;
use pp_baselines::{ThreeMajority, TrivialProportional, TwoChoices, Voter};

fn first_extinction<P>(protocol: P, n: usize, k: usize, budget: u64, seed: u64) -> Option<u64>
where
    P: Protocol<State = Colour>,
{
    let states: Vec<Colour> = (0..n).map(|u| Colour::new(u % k)).collect();
    let mut sim = Simulator::new(protocol, Complete::new(n), states, seed);
    sim.run_until(budget, n as u64, |pop, _| {
        let counts = pop.count_by(|&c| c);
        (0..k).any(|i| !counts.contains_key(&Colour::new(i)))
    })
}

#[test]
fn consensus_protocols_lose_a_colour() {
    let n = 200;
    let budget = (n * n * 30) as u64;
    assert!(first_extinction(Voter, n, 4, budget, 1).is_some(), "voter");
    assert!(
        first_extinction(TwoChoices, n, 4, budget, 1).is_some(),
        "2-choices"
    );
    assert!(
        first_extinction(ThreeMajority, n, 4, budget, 1).is_some(),
        "3-majority"
    );
}

#[test]
fn diversification_never_loses_a_colour_in_same_budget() {
    let n = 200;
    let k = 4;
    let weights = Weights::uniform(k);
    let states = init::all_dark_balanced(n, &weights);
    let mut sim = Simulator::new(Diversification::new(weights), Complete::new(n), states, 1);
    let budget = (n * n * 30) as u64;
    let extinct = sim.run_until(budget, n as u64, |pop, _| {
        let stats = ConfigStats::from_states(pop.states(), k);
        (0..k).any(|i| stats.colour_count(i) == 0)
    });
    assert_eq!(extinct, None, "diversification lost a colour");
}

#[test]
fn trivial_protocol_is_not_robust_to_retirement() {
    // Retire colour 0 by recolouring its supporters; the trivial protocol
    // resurrects it immediately because agents sample from the global table.
    let n = 200;
    let weights = Weights::uniform(3);
    let states: Vec<Colour> = (0..n).map(|u| Colour::new(1 + (u % 2))).collect();
    let mut sim = Simulator::new(
        TrivialProportional::new(weights),
        Complete::new(n),
        states,
        2,
    );
    sim.run(20_000);
    let dead_support = sim.population().count_matching(|&c| c == Colour::new(0));
    assert!(
        dead_support > 0,
        "trivial protocol should keep resampling the retired colour"
    );
}

#[test]
fn diversification_respects_retirement() {
    // The same scenario under Diversification: nobody holds colour 0, so it
    // can never come back (local observations only).
    let universe = Weights::uniform(3);
    let n = 200;
    let states: Vec<AgentState> = (0..n)
        .map(|u| AgentState::dark(Colour::new(1 + (u % 2))))
        .collect();
    let mut sim = Simulator::new(Diversification::new(universe), Complete::new(n), states, 2);
    sim.run(200_000);
    let stats = ConfigStats::from_states(sim.population().states(), 3);
    assert_eq!(stats.colour_count(0), 0, "retired colour resurrected");
    // And the two live colours split the population evenly.
    assert!((stats.colour_fraction(1) - 0.5).abs() < 0.12);
}

#[test]
fn anti_voter_is_the_k2_unweighted_special_case() {
    // Anti-Voter sustains two colours at 1/2 each — Diversification with
    // uniform weights generalises this to any k and any weights.
    use pp_baselines::AntiVoter;
    let n = 200;
    let states: Vec<Colour> = (0..n).map(|u| Colour::new(u % 2)).collect();
    let mut sim = Simulator::new(AntiVoter, Complete::new(n), states, 3);
    sim.run(100_000);
    let ones = sim.population().count_matching(|&c| c == Colour::new(1));
    let frac = ones as f64 / n as f64;
    assert!((frac - 0.5).abs() < 0.15, "anti-voter share {frac}");
}
