//! Sharded-vs-packed statistical equivalence, protocol × topology family.
//!
//! The graph-partitioned engine's contract is distributional: its shard
//! decomposition — per-shard counter streams plus the deterministic
//! block-boundary merge of cross-shard interactions — must simulate the
//! *same Markov chain* as the bit-exact engines. This suite is that
//! contract test, the sharded sibling of `tests/turbo_equivalence.rs`:
//! for every protocol (Diversification + the four consensus baselines) on
//! every topology family (complete, ring, torus, random-regular), the
//! exact packed engine and a `ShardedSimulator` with 4 shards run an
//! ensemble of independent seeds, and the per-seed observables are
//! compared with chi-square (terminal probe-state histograms), KS
//! (hit-time distributions), and moment checks (summary trajectories at
//! checkpoints) under one Bonferroni-corrected threshold.
//!
//! The suite deliberately includes the **complete graph**, the hardest
//! case for both cross-shard read relaxations: its strided partition
//! sends ~3/4 of interactions cross-shard, through the boundary merge
//! (`ReadMode::Defer`) or block-start snapshot reads
//! (`ReadMode::Snapshot`, the strided default — so the family battery
//! exercises snapshot reads on the complete graph and the merge on the
//! contiguous families, and `snapshot_reads_match_packed_on_high_cut_families`
//! adds the explicit snapshot-mode battery on complete + expander). The
//! harness's power is demonstrated twice: the canonical reconciliation
//! bug (each queued interaction applied twice,
//! `boundary_double_count_bug_is_rejected`) and the canonical
//! count-split bug (one granted step per block migrated between shards,
//! `split_off_by_one_bug_is_rejected`) must both be rejected at
//! `p < 10⁻⁶`.
//!
//! The sharded trajectories are a function of `(seed, shards, block,
//! read mode)` only — never of thread count — so the suite is
//! deterministic on any machine. `PP_EQUIV_SEEDS` (default 48) scales
//! the ensemble; the CI `sharded-smoke` job runs 24. Keep it at 20 or
//! above (below the harness's `VARIANCE_TEST_MIN_N` the variance checks
//! are dropped and the chi-square histograms starve).

use pp_baselines::{AntiVoter, ThreeMajority, TwoChoices, Voter};
use pp_core::{init, packed::config_stats_from_words, Colour, Diversification, Weights};
use pp_engine::{replicate, PackedProtocol, PackedSimulator, ReadMode, ShardedSimulator};
use pp_graph::{random_regular, Complete, Csr, Cycle, Topology, Torus2d};
use pp_stats::EquivalenceSuite;
use rand::rngs::StdRng;
use rand::SeedableRng;

const N: usize = 256;
/// Shards under test: enough that contiguous families have interior
/// boundaries on every side and the strided complete graph defers most
/// interactions.
const SHARDS: usize = 4;
/// Block length: divides `CHECK`, so observations land on merge
/// boundaries and both engines observe fully reconciled states.
const BLOCK: u64 = 32;
/// Summary/hit-predicate evaluation stride; budget and checkpoints are
/// multiples so both engines observe at identical steps.
const CHECK: u64 = 128;

fn equiv_seeds() -> u64 {
    std::env::var("PP_EQUIV_SEEDS")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(48)
}

fn budget() -> u64 {
    // ≈ 25·n·ln n, rounded to the evaluation stride.
    let raw = (25.0 * N as f64 * (N as f64).ln()) as u64;
    raw / CHECK * CHECK
}

/// One seed's reduced observables.
struct SeedRecord {
    probe: u32,
    hit_time: f64,
    /// `traj[checkpoint][stat]`: every summary statistic at every
    /// checkpoint.
    traj: Vec<Vec<f64>>,
}

/// The minimal engine surface the driver needs; implemented for the exact
/// packed engine and the sharded engine (with `u8` storage, so the narrow
/// word path is exercised by the statistical contract too).
trait EngineRun {
    fn advance(&mut self, steps: u64);
    fn states_wide(&self) -> Vec<u32>;
}

impl<P: PackedProtocol, T: Topology> EngineRun for PackedSimulator<P, T> {
    fn advance(&mut self, steps: u64) {
        self.run(steps);
    }

    fn states_wide(&self) -> Vec<u32> {
        self.states_packed().to_vec()
    }
}

impl<P: PackedProtocol, T: Topology> EngineRun for ShardedSimulator<P, T, u8> {
    fn advance(&mut self, steps: u64) {
        self.run(steps);
    }

    fn states_wide(&self) -> Vec<u32> {
        self.states_packed()
    }
}

/// Drives one run: advances in `CHECK`-step chunks, records the first
/// chunk boundary where `hit` holds (capped at the budget) and the
/// summary statistic at each checkpoint.
fn run_seed(
    engine: &mut dyn EngineRun,
    checkpoints: &[u64],
    stat: &(dyn Fn(&[u32]) -> Vec<f64> + Sync),
    hit: &(dyn Fn(&[u32]) -> bool + Sync),
) -> SeedRecord {
    let budget = budget();
    let mut hit_at: Option<u64> = None;
    let mut traj = Vec::with_capacity(checkpoints.len());
    let mut next_cp = 0usize;
    let mut at = 0u64;
    let mut wide = Vec::new();
    while at < budget {
        engine.advance(CHECK);
        at += CHECK;
        wide = engine.states_wide();
        if hit_at.is_none() && hit(&wide) {
            hit_at = Some(at);
        }
        while next_cp < checkpoints.len() && at >= checkpoints[next_cp] {
            traj.push(stat(&wide));
            next_cp += 1;
        }
    }
    SeedRecord {
        probe: wide[0],
        hit_time: hit_at.unwrap_or(budget) as f64,
        traj,
    }
}

/// Histogram of probe states over `categories` cells.
fn probe_counts(records: &[SeedRecord], categories: usize) -> Vec<u64> {
    let mut counts = vec![0u64; categories];
    for r in records {
        counts[r.probe as usize] += 1;
    }
    counts
}

/// Which canonical sharded-scheduler bug a cell injects (power
/// demonstrations only; `None` for the contract batteries).
#[derive(Clone, Copy, PartialEq, Eq)]
enum Inject {
    None,
    /// Every queued boundary interaction applied twice in the merge.
    DoubleCount,
    /// One granted step per block migrated to shard 0 (sums preserved).
    SplitOffByOne,
}

/// Per-cell sharded-engine configuration.
#[derive(Clone, Copy)]
struct CellCfg {
    /// `None` = the partition layout's default read mode.
    mode: Option<ReadMode>,
    inject: Inject,
    block: u64,
}

impl Default for CellCfg {
    fn default() -> Self {
        CellCfg {
            mode: None,
            inject: Inject::None,
            block: BLOCK,
        }
    }
}

fn sharded_engine<P, T>(
    protocol: P,
    topology: T,
    init: &[P::State],
    seed: u64,
    cfg: CellCfg,
) -> ShardedSimulator<P, T, u8>
where
    P: PackedProtocol,
    T: Topology,
{
    let mut sim = ShardedSimulator::<_, _, u8>::new(protocol, topology, init, seed)
        .with_layout(SHARDS, cfg.block);
    if let Some(mode) = cfg.mode {
        sim = sim.with_read_mode(mode);
    }
    match cfg.inject {
        Inject::None => {}
        Inject::DoubleCount => sim.inject_boundary_double_count(true),
        Inject::SplitOffByOne => sim.inject_split_off_by_one(true),
    }
    sim
}

/// Runs one protocol × family cell on both engines and records the full
/// test battery into `suite`. `cfg` picks the sharded engine's read mode
/// and any injected bug (power demonstration).
#[allow(clippy::too_many_arguments)]
fn compare_cell<P, T>(
    suite: &mut EquivalenceSuite,
    label: &str,
    cell: u64,
    protocol: P,
    topology: T,
    init: Vec<P::State>,
    categories: usize,
    stat_names: &[&str],
    stat: impl Fn(&[u32]) -> Vec<f64> + Sync,
    hit: impl Fn(&[u32]) -> bool + Sync,
    cfg: CellCfg,
) where
    P: PackedProtocol + Clone,
    P::State: Clone + Send + Sync,
    T: Topology + Clone,
{
    let seeds = equiv_seeds();
    let b = budget();
    let checkpoints = [b / 2, b];
    let stat = &stat;
    let hit = &hit;
    let packed: Vec<SeedRecord> = replicate(0..seeds, |s| {
        let mut sim =
            PackedSimulator::new(protocol.clone(), topology.clone(), &init, cell * 1_000 + s);
        run_seed(&mut sim, &checkpoints, stat, hit)
    });
    let sharded: Vec<SeedRecord> = replicate(0..seeds, |s| {
        let mut sim = sharded_engine(
            protocol.clone(),
            topology.clone(),
            &init,
            700_000 + cell * 1_000 + s,
            cfg,
        );
        run_seed(&mut sim, &checkpoints, stat, hit)
    });

    suite.check_counts(
        format!("{label}: terminal probe-state histogram"),
        &probe_counts(&packed, categories),
        &probe_counts(&sharded, categories),
    );
    let times = |rs: &[SeedRecord]| -> Vec<f64> { rs.iter().map(|r| r.hit_time).collect() };
    suite.check_distribution(
        format!("{label}: hit-time distribution"),
        &times(&packed),
        &times(&sharded),
    );
    for (i, &cp) in checkpoints.iter().enumerate() {
        for (j, stat_name) in stat_names.iter().enumerate() {
            let col = |rs: &[SeedRecord]| -> Vec<f64> { rs.iter().map(|r| r.traj[i][j]).collect() };
            let (pa, sh) = (col(&packed), col(&sharded));
            suite.check_moments(format!("{label}: {stat_name} @ step {cp}"), &pa, &sh);
            suite.check_distribution(format!("{label}: {stat_name} @ step {cp} [KS]"), &pa, &sh);
        }
    }
}

/// The four topology families of the acceptance criteria, at `n = 256`.
fn families(cell_seed: u64) -> Vec<(&'static str, FamilyTopo)> {
    let mut rng = StdRng::seed_from_u64(900 + cell_seed);
    vec![
        ("complete", FamilyTopo::Complete(Complete::new(N))),
        ("ring", FamilyTopo::Cycle(Cycle::new(N))),
        ("torus", FamilyTopo::Torus(Torus2d::new(16, 16))),
        (
            "random-regular",
            FamilyTopo::Csr(random_regular(N, 8, &mut rng).to_csr()),
        ),
    ]
}

/// Concrete family storage so each cell stays fully monomorphized.
#[derive(Clone)]
enum FamilyTopo {
    Complete(Complete),
    Cycle(Cycle),
    Torus(Torus2d),
    Csr(Csr),
}

/// Dispatches one cell over the family enum.
#[allow(clippy::too_many_arguments)]
fn compare_on_family<P>(
    suite: &mut EquivalenceSuite,
    label: &str,
    cell: u64,
    protocol: P,
    family: FamilyTopo,
    init: Vec<P::State>,
    categories: usize,
    stat_names: &[&str],
    stat: impl Fn(&[u32]) -> Vec<f64> + Sync + Clone,
    hit: impl Fn(&[u32]) -> bool + Sync + Clone,
    cfg: CellCfg,
) where
    P: PackedProtocol + Clone,
    P::State: Clone + Send + Sync,
{
    match family {
        FamilyTopo::Complete(t) => compare_cell(
            suite, label, cell, protocol, t, init, categories, stat_names, stat, hit, cfg,
        ),
        FamilyTopo::Cycle(t) => compare_cell(
            suite, label, cell, protocol, t, init, categories, stat_names, stat, hit, cfg,
        ),
        FamilyTopo::Torus(t) => compare_cell(
            suite, label, cell, protocol, t, init, categories, stat_names, stat, hit, cfg,
        ),
        FamilyTopo::Csr(t) => compare_cell(
            suite, label, cell, protocol, t, init, categories, stat_names, stat, hit, cfg,
        ),
    }
}

/// Balanced colour assignment for the consensus baselines.
fn balanced_colours(k: usize) -> Vec<Colour> {
    (0..N).map(|u| Colour::new(u % k)).collect()
}

/// Fraction of agents holding colour 0 (consensus-baseline summary).
fn colour0_fraction(wide: &[u32]) -> f64 {
    wide.iter().filter(|&&p| p == 0).count() as f64 / wide.len() as f64
}

/// Fraction of dark agents (Diversification shade observable — sensitive
/// to rate bugs that colour-based statistics cannot see).
fn dark_fraction(wide: &[u32]) -> f64 {
    wide.iter().filter(|&&p| p & 1 == 1).count() as f64 / wide.len() as f64
}

/// Fraction held by the currently largest colour among `k`.
fn max_colour_fraction(wide: &[u32], k: usize) -> f64 {
    let mut counts = vec![0usize; k];
    for &p in wide {
        counts[p as usize] += 1;
    }
    counts.into_iter().max().unwrap_or(0) as f64 / wide.len() as f64
}

/// Number of colours of `k` still alive.
fn alive_colours(wide: &[u32], k: usize) -> f64 {
    let mut alive = vec![false; k];
    for &p in wide {
        alive[p as usize] = true;
    }
    alive.iter().filter(|&&a| a).count() as f64
}

/// Whether some colour of `k` has gone extinct (consensus-baseline hit
/// event).
fn some_colour_extinct(wide: &[u32], k: usize) -> bool {
    let mut alive = vec![false; k];
    for &p in wide {
        alive[p as usize] = true;
    }
    alive.iter().any(|&a| !a)
}

#[test]
fn diversification_sharded_matches_packed_on_all_families() {
    let w = Weights::new(vec![1.0, 1.0, 2.0, 4.0]).unwrap();
    let k = w.len();
    let mut suite = EquivalenceSuite::new("sharded-vs-packed: diversification", 1e-3);
    for (i, (name, family)) in families(0).into_iter().enumerate() {
        let w_stat = w.clone();
        let w_hit = w.clone();
        compare_on_family(
            &mut suite,
            &format!("diversification/{name}"),
            i as u64,
            Diversification::new(w.clone()),
            family,
            init::all_dark_balanced(N, &w),
            2 * k,
            &["diversity error", "dark fraction", "colour-0 fraction"],
            move |wide| {
                vec![
                    config_stats_from_words(wide, k).max_diversity_error(&w_stat),
                    dark_fraction(wide),
                    wide.iter().filter(|&&p| p >> 1 == 0).count() as f64 / wide.len() as f64,
                ]
            },
            move |wide| config_stats_from_words(wide, k).max_diversity_error(&w_hit) < 0.25,
            CellCfg::default(),
        );
    }
    suite.assert_pass();
}

#[test]
fn voter_sharded_matches_packed_on_all_families() {
    let k = 4;
    let mut suite = EquivalenceSuite::new("sharded-vs-packed: voter", 1e-3);
    for (i, (name, family)) in families(1).into_iter().enumerate() {
        compare_on_family(
            &mut suite,
            &format!("voter/{name}"),
            10 + i as u64,
            Voter,
            family,
            balanced_colours(k),
            k,
            &["colour-0 fraction", "max colour fraction", "alive colours"],
            move |wide| {
                vec![
                    colour0_fraction(wide),
                    max_colour_fraction(wide, k),
                    alive_colours(wide, k),
                ]
            },
            move |wide| some_colour_extinct(wide, k),
            CellCfg::default(),
        );
    }
    suite.assert_pass();
}

#[test]
fn two_choices_sharded_matches_packed_on_all_families() {
    let k = 4;
    let mut suite = EquivalenceSuite::new("sharded-vs-packed: 2-choices", 1e-3);
    for (i, (name, family)) in families(2).into_iter().enumerate() {
        compare_on_family(
            &mut suite,
            &format!("2-choices/{name}"),
            20 + i as u64,
            TwoChoices,
            family,
            balanced_colours(k),
            k,
            &["colour-0 fraction", "max colour fraction", "alive colours"],
            move |wide| {
                vec![
                    colour0_fraction(wide),
                    max_colour_fraction(wide, k),
                    alive_colours(wide, k),
                ]
            },
            move |wide| some_colour_extinct(wide, k),
            CellCfg::default(),
        );
    }
    suite.assert_pass();
}

#[test]
fn three_majority_sharded_matches_packed_on_all_families() {
    let k = 4;
    let mut suite = EquivalenceSuite::new("sharded-vs-packed: 3-majority", 1e-3);
    for (i, (name, family)) in families(3).into_iter().enumerate() {
        compare_on_family(
            &mut suite,
            &format!("3-majority/{name}"),
            30 + i as u64,
            ThreeMajority,
            family,
            balanced_colours(k),
            k,
            &["colour-0 fraction", "max colour fraction", "alive colours"],
            move |wide| {
                vec![
                    colour0_fraction(wide),
                    max_colour_fraction(wide, k),
                    alive_colours(wide, k),
                ]
            },
            move |wide| some_colour_extinct(wide, k),
            CellCfg::default(),
        );
    }
    suite.assert_pass();
}

#[test]
fn anti_voter_sharded_matches_packed_on_all_families() {
    // Anti-voter never reaches consensus; the hit event is the first
    // noticeable excursion of the colour-0 count from the half/half
    // equilibrium.
    let excursion = (N as f64).sqrt() / N as f64; // 1·√n agents, as a fraction
    let mut suite = EquivalenceSuite::new("sharded-vs-packed: anti-voter", 1e-3);
    for (i, (name, family)) in families(4).into_iter().enumerate() {
        compare_on_family(
            &mut suite,
            &format!("anti-voter/{name}"),
            40 + i as u64,
            AntiVoter,
            family,
            balanced_colours(2),
            2,
            &["colour-0 fraction"],
            move |wide| vec![colour0_fraction(wide)],
            move |wide| (colour0_fraction(wide) - 0.5).abs() >= excursion,
            CellCfg::default(),
        );
    }
    suite.assert_pass();
}

#[test]
fn snapshot_reads_match_packed_on_high_cut_families() {
    // The snapshot-read bias battery of the acceptance criteria: on the
    // high-cut families — the complete graph (strided, ~3/4 cut) and a
    // random-regular expander (contiguous numbering, cut ≈ (S−1)/S) —
    // block-start snapshot reads must stay within the O(B/n × cut)
    // staleness bound, i.e. statistically indistinguishable from the
    // bit-exact engine at the harness's resolution. Forcing the mode
    // covers both monomorphized snapshot paths (strided × snapshot and
    // contiguous × snapshot).
    let w = Weights::new(vec![1.0, 1.0, 2.0, 4.0]).unwrap();
    let k = w.len();
    let mut suite = EquivalenceSuite::new("sharded snapshot reads vs packed", 1e-3);
    let snapshot = CellCfg {
        mode: Some(ReadMode::Snapshot),
        ..CellCfg::default()
    };
    for (i, (name, family)) in families(5).into_iter().enumerate() {
        if !matches!(family, FamilyTopo::Complete(_) | FamilyTopo::Csr(_)) {
            continue;
        }
        let w_stat = w.clone();
        let w_hit = w.clone();
        compare_on_family(
            &mut suite,
            &format!("diversification/{name} [snapshot reads]"),
            50 + i as u64,
            Diversification::new(w.clone()),
            family,
            init::all_dark_balanced(N, &w),
            2 * k,
            &["diversity error", "dark fraction"],
            move |wide| {
                vec![
                    config_stats_from_words(wide, k).max_diversity_error(&w_stat),
                    dark_fraction(wide),
                ]
            },
            move |wide| config_stats_from_words(wide, k).max_diversity_error(&w_hit) < 0.25,
            snapshot,
        );
    }
    suite.assert_pass();
}

/// Asserts that `suite` rejected with at least one failure below 10⁻⁶.
fn assert_rejected_below_1e6(suite: &EquivalenceSuite, what: &str) {
    assert!(
        !suite.passed(),
        "{what} was not detected:\n{}",
        suite.render()
    );
    let min_p = suite
        .failures()
        .iter()
        .map(|(_, r)| r.p_value)
        .fold(f64::INFINITY, f64::min);
    assert!(
        min_p < 1e-6,
        "{what} only rejected at p = {min_p:.3e} (need < 1e-6):\n{}",
        suite.render()
    );
}

#[test]
fn boundary_double_count_bug_is_rejected() {
    // Power demonstration (acceptance criterion): with the injected
    // reconciliation bug — every queued boundary interaction applied
    // twice — the harness must reject equivalence at p < 10⁻⁶. The
    // complete graph is used because its strided partition sends ~3/4 of
    // interactions cross-shard, the worst case a real reconciliation bug
    // would corrupt; the read mode is pinned to `Defer` because the
    // merge is the code this bug lives in (the strided default is
    // snapshot reads, which have no merge).
    let w = Weights::new(vec![1.0, 1.0, 2.0, 4.0]).unwrap();
    let k = w.len();
    let mut suite = EquivalenceSuite::new("sharded double-count injection", 1e-3);
    let w_stat = w.clone();
    let w_hit = w.clone();
    compare_cell(
        &mut suite,
        "diversification/complete [double-counted boundaries]",
        60,
        Diversification::new(w.clone()),
        Complete::new(N),
        init::all_dark_balanced(N, &w),
        2 * k,
        &["diversity error", "dark fraction"],
        move |wide| {
            vec![
                config_stats_from_words(wide, k).max_diversity_error(&w_stat),
                dark_fraction(wide),
            ]
        },
        move |wide| config_stats_from_words(wide, k).max_diversity_error(&w_hit) < 0.25,
        CellCfg {
            mode: Some(ReadMode::Defer),
            inject: Inject::DoubleCount,
            block: BLOCK,
        },
    );
    assert_rejected_below_1e6(&suite, "double-counted boundary interactions");
}

#[test]
fn split_off_by_one_bug_is_rejected() {
    // Power demonstration for the count-split itself: one granted step
    // per block migrated to shard 0 — totals still sum to the block, so
    // only the *distribution* of work is wrong. A short block makes the
    // relative distortion large (shard 0's expected share of a 4-step
    // block over 4 equal shards is 1, so +1 doubles its activation
    // rate), and on the strided complete graph shard 0 is exactly the
    // agents initialised to colour 0 — voter dynamics turn the rate bias
    // into directional colour-0 extinction the harness must reject at
    // p < 10⁻⁶ (the hit event probes that colour directly).
    let k = 4;
    let mut suite = EquivalenceSuite::new("sharded split off-by-one injection", 1e-3);
    compare_cell(
        &mut suite,
        "voter/complete [off-by-one count split]",
        61,
        Voter,
        Complete::new(N),
        balanced_colours(k),
        k,
        &["colour-0 fraction", "max colour fraction", "alive colours"],
        move |wide| {
            vec![
                colour0_fraction(wide),
                max_colour_fraction(wide, k),
                alive_colours(wide, k),
            ]
        },
        move |wide| wide.iter().all(|&p| p != 0),
        CellCfg {
            mode: None,
            inject: Inject::SplitOffByOne,
            block: 4,
        },
    );
    assert_rejected_below_1e6(&suite, "the off-by-one count split");
}
