//! Property tests for the `Engine` population-mutation surface: a
//! `push_agent` followed by `swap_remove_agent(len() - 1)` must round-trip
//! the class counts bit-exactly on every tier (the shock machinery in
//! `pp-adversary` and the model-check gate in `pp-check` both lean on
//! this), and removal at the 2-agent floor must be rejected everywhere.

use pp_core::{init, AgentState, Colour, Diversification, Weights};
use pp_dense::DenseEngine;
use pp_engine::{
    Engine, PackedSimulator, ShardedSimulator, Simulator, TurboSimulator, VecSimulator,
};
use pp_graph::Complete;
use proptest::prelude::*;
use std::panic::{catch_unwind, AssertUnwindSafe};

/// All six engine tiers over the complete graph at the same start.
fn tiers(
    n: usize,
    k: usize,
    seed: u64,
) -> Vec<(&'static str, Box<dyn Engine<State = AgentState>>)> {
    let weights = Weights::uniform(k);
    let protocol = || Diversification::new(weights.clone());
    let states = init::all_dark_balanced(n, &weights);
    vec![
        (
            "agent",
            Box::new(Simulator::new(
                protocol(),
                Complete::new(n),
                states.clone(),
                seed,
            )) as Box<dyn Engine<State = AgentState>>,
        ),
        (
            "packed",
            Box::new(PackedSimulator::new(
                protocol(),
                Complete::new(n),
                &states,
                seed,
            )),
        ),
        (
            "turbo",
            Box::new(TurboSimulator::<_, _, u32>::new(
                protocol(),
                Complete::new(n),
                &states,
                seed,
            )),
        ),
        (
            "sharded",
            Box::new(ShardedSimulator::<_, _, u32>::new(
                protocol(),
                Complete::new(n),
                &states,
                seed,
            )),
        ),
        (
            "vec",
            Box::new(VecSimulator::<_, _, u32, 1>::from_seed(
                protocol(),
                Complete::new(n),
                &states,
                seed,
            )),
        ),
        (
            "dense",
            Box::new(DenseEngine::from_states(protocol(), &states, k, seed)),
        ),
    ]
}

proptest! {
    #[test]
    fn push_then_swap_remove_last_round_trips_class_counts(
        n in 5usize..40,
        k in 2usize..5,
        colour in 0usize..5,
        steps in 0u64..500,
        seed in 0u64..20,
    ) {
        let k = k.min(n); // balanced init needs an agent per colour
        let colour = colour % k;
        for (tier, mut sim) in tiers(n, k, seed) {
            // Mutate a *running* population, not just the seed state: the
            // round-trip must hold wherever a shock lands.
            sim.run(steps);
            let before = sim.class_counts();
            let newcomer = AgentState::dark(Colour::new(colour));

            sim.push_agent(&newcomer);
            prop_assert_eq!(sim.len(), n + 1, "{}: push must grow by one", tier);
            let mut expected = before.clone();
            expected[2 * colour + 1] += 1;
            prop_assert_eq!(
                &sim.class_counts(),
                &expected,
                "{}: push must add exactly one agent of the pushed class",
                tier
            );

            // Removing the pushed agent must undo the push bit for bit. On
            // the per-agent tiers it sits at the end (`len() - 1`); the
            // dense tier has no per-agent identity and orders agents
            // canonically by class, so the pushed agent is the last index
            // holding its state.
            let idx = (0..sim.len())
                .rev()
                .find(|&u| sim.state(u) == newcomer)
                .expect("the pushed state must be present");
            if tier != "dense" {
                prop_assert_eq!(idx, sim.len() - 1, "{}: push appends", tier);
            }
            sim.swap_remove_agent(idx);
            prop_assert_eq!(sim.len(), n, "{}: remove must shrink by one", tier);
            prop_assert_eq!(
                &sim.class_counts(),
                &before,
                "{}: push/swap_remove(len-1) must round-trip the class counts",
                tier
            );
        }
    }

    #[test]
    fn swap_remove_of_interior_agent_preserves_population(
        n in 4usize..30,
        k in 2usize..4,
        u in 0usize..30,
        seed in 0u64..20,
    ) {
        let u = u % (n - 1); // any slot but the last: exercises the swap
        for (tier, mut sim) in tiers(n, k, seed) {
            let before: u64 = sim.class_counts().iter().sum();
            sim.swap_remove_agent(u);
            prop_assert_eq!(sim.len(), n - 1, "{}", tier);
            let after: u64 = sim.class_counts().iter().sum();
            prop_assert_eq!(after, before - 1, "{}: exactly one agent leaves", tier);
        }
    }
}

#[test]
fn swap_remove_at_the_two_agent_floor_is_rejected_on_every_tier() {
    for (tier, mut sim) in tiers(3, 2, 5) {
        // 3 agents: one removal is fine, the next would cross the floor.
        sim.swap_remove_agent(0);
        assert_eq!(sim.len(), 2, "{tier}");
        let err = catch_unwind(AssertUnwindSafe(|| sim.swap_remove_agent(0)))
            .expect_err("removing below 2 agents must panic");
        let msg = err
            .downcast_ref::<String>()
            .map(String::as_str)
            .or_else(|| err.downcast_ref::<&str>().copied())
            .unwrap_or("");
        assert!(
            msg.contains("fewer than 2"),
            "{tier}: panic message should name the floor, got `{msg}`"
        );
        assert_eq!(sim.len(), 2, "{tier}: failed removal must not mutate");
    }
}
