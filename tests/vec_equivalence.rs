//! Vec-vs-packed statistical equivalence, **per lane**, plus the
//! one-lane bit-exactness contract vs turbo.
//!
//! The lane-parallel [`VecSimulator`] steps `L` replicas of one
//! `(topology, protocol)` pair in lockstep: a shared schedule walk picks
//! the same agent in every lane, and per-lane counter streams drive each
//! lane's partner draws and transition randomness. Its contract has two
//! halves, and this suite tests both:
//!
//! * **Bit-exact at `L = 1`**: with the lane seed equal to the master
//!   seed, the single lane replays the turbo engine's trajectory
//!   word-for-word — the vec tier is a strict generalisation, not a
//!   third randomness dialect. (`one_lane_vec_is_bit_exact_vs_turbo...`)
//! * **Distributional per lane at `L > 1`**: every lane of a multi-lane
//!   ensemble must look like an independent draw of the same Markov
//!   chain the bit-exact engines simulate. Lanes of one group share the
//!   schedule, so the harness gives every `L = 8` group its own master
//!   seed and treats each lane as one seed's run, then feeds the lanes
//!   through the same `pp_stats::equivalence` battery the turbo suite
//!   uses: chi-square on terminal probe states, KS on hit times, moment
//!   and KS checks on summary-statistic trajectories, all under one
//!   Bonferroni-corrected family-wise threshold.
//!
//! `PP_EQUIV_SEEDS` (default 48) scales the ensemble; the CI `vec-smoke`
//! job runs a reduced count. Keep it at 20 or above: below the
//! harness's `VARIANCE_TEST_MIN_N` the variance checks are dropped, and
//! tiny ensembles starve the chi-square histograms.

use pp_baselines::{TwoChoices, Voter};
use pp_core::{init, packed::config_stats_from_words, Colour, Diversification, Weights};
use pp_engine::{
    replicate, replicate_vec, PackedProtocol, PackedSimulator, TurboSimulator, VecSimulator,
};
use pp_graph::{random_regular, Complete, Csr, Cycle, Topology, Torus2d};
use pp_stats::EquivalenceSuite;
use rand::rngs::StdRng;
use rand::SeedableRng;

const N: usize = 256;
/// Summary/hit-predicate evaluation stride; budget and checkpoints are
/// multiples so every engine observes at identical steps.
const CHECK: u64 = 128;
/// Lanes per ensemble group in the statistical tests.
const LANES: usize = 8;

fn equiv_seeds() -> u64 {
    std::env::var("PP_EQUIV_SEEDS")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(48)
}

fn budget() -> u64 {
    // ≈ 25·n·ln n, rounded to the evaluation stride.
    let raw = (25.0 * N as f64 * (N as f64).ln()) as u64;
    raw / CHECK * CHECK
}

/// One seed's (= one lane's) reduced observables.
struct SeedRecord {
    probe: u32,
    hit_time: f64,
    /// `traj[checkpoint][stat]`.
    traj: Vec<Vec<f64>>,
}

/// Drives one packed (exact-engine) run: advances in `CHECK`-step
/// chunks, records the first chunk boundary where `hit` holds (capped
/// at the budget) and the summary statistics at each checkpoint.
fn run_packed<P: PackedProtocol, T: Topology>(
    sim: &mut PackedSimulator<P, T>,
    checkpoints: &[u64],
    stat: &(dyn Fn(&[u32]) -> Vec<f64> + Sync),
    hit: &(dyn Fn(&[u32]) -> bool + Sync),
) -> SeedRecord {
    let budget = budget();
    let mut hit_at: Option<u64> = None;
    let mut traj = Vec::with_capacity(checkpoints.len());
    let mut next_cp = 0usize;
    let mut at = 0u64;
    let mut wide = Vec::new();
    while at < budget {
        sim.run(CHECK);
        at += CHECK;
        wide = sim.states_packed().to_vec();
        if hit_at.is_none() && hit(&wide) {
            hit_at = Some(at);
        }
        while next_cp < checkpoints.len() && at >= checkpoints[next_cp] {
            traj.push(stat(&wide));
            next_cp += 1;
        }
    }
    SeedRecord {
        probe: wide[0],
        hit_time: hit_at.unwrap_or(budget) as f64,
        traj,
    }
}

/// Drives one `L`-lane [`VecSimulator`] group through the same chunked
/// schedule and returns one [`SeedRecord`] **per lane**: each lane's hit
/// time and trajectory are evaluated on that lane's states alone, so a
/// lane enters the suite exactly like a scalar seed would.
#[allow(clippy::too_many_arguments)]
fn run_group<P, T, const L: usize>(
    protocol: P,
    topology: T,
    init: &[P::State],
    master: u64,
    lane_seeds: [u64; L],
    checkpoints: &[u64],
    stat: &(dyn Fn(&[u32]) -> Vec<f64> + Sync),
    hit: &(dyn Fn(&[u32]) -> bool + Sync),
) -> Vec<SeedRecord>
where
    P: PackedProtocol,
    T: Topology,
{
    let budget = budget();
    let mut sim = VecSimulator::<P, T, u8, L>::new(protocol, topology, init, master, lane_seeds);
    let mut hit_at = [None::<u64>; L];
    let mut traj: Vec<Vec<Vec<f64>>> = (0..L).map(|_| Vec::new()).collect();
    let mut next_cp = 0usize;
    let mut at = 0u64;
    let mut last: Vec<Vec<u32>> = (0..L).map(|_| Vec::new()).collect();
    while at < budget {
        sim.run(CHECK);
        at += CHECK;
        for (l, slot) in last.iter_mut().enumerate() {
            *slot = sim.lane_states_packed(l);
            if hit_at[l].is_none() && hit(slot) {
                hit_at[l] = Some(at);
            }
        }
        while next_cp < checkpoints.len() && at >= checkpoints[next_cp] {
            for (l, t) in traj.iter_mut().enumerate() {
                t.push(stat(&last[l]));
            }
            next_cp += 1;
        }
    }
    traj.into_iter()
        .enumerate()
        .map(|(l, traj)| SeedRecord {
            probe: last[l][0],
            hit_time: hit_at[l].unwrap_or(budget) as f64,
            traj,
        })
        .collect()
}

/// Histogram of probe states over `categories` cells.
fn probe_counts(records: &[SeedRecord], categories: usize) -> Vec<u64> {
    let mut counts = vec![0u64; categories];
    for r in records {
        counts[r.probe as usize] += 1;
    }
    counts
}

/// Runs one protocol × family cell — exact packed engine vs the
/// multi-lane vec engine — and records the full test battery into
/// `suite`. Vec seeds are packed into [`LANES`]-lane groups, **each
/// group with its own master seed**: lanes of one group share a
/// schedule walk, so group-distinct masters are what licenses treating
/// every lane as an independent sample.
#[allow(clippy::too_many_arguments)]
fn compare_cell<P, T>(
    suite: &mut EquivalenceSuite,
    label: &str,
    cell: u64,
    protocol: P,
    topology: T,
    init: Vec<P::State>,
    categories: usize,
    stat_names: &[&str],
    stat: impl Fn(&[u32]) -> Vec<f64> + Sync,
    hit: impl Fn(&[u32]) -> bool + Sync,
) where
    P: PackedProtocol + Clone,
    P::State: Clone + Send + Sync,
    T: Topology + Clone,
{
    let seeds = equiv_seeds();
    let b = budget();
    let checkpoints = [b / 2, b];
    let stat = &stat;
    let hit = &hit;
    let packed: Vec<SeedRecord> = replicate(0..seeds, |s| {
        let mut sim =
            PackedSimulator::new(protocol.clone(), topology.clone(), &init, cell * 1_000 + s);
        run_packed(&mut sim, &checkpoints, stat, hit)
    });
    let lane_seeds: Vec<u64> = (0..seeds).map(|s| 500_000 + cell * 1_000 + s).collect();
    let groups: Vec<&[u64]> = lane_seeds.chunks(LANES).collect();
    let vec_lanes: Vec<Vec<SeedRecord>> = replicate(0..groups.len() as u64, |g| {
        let chunk = groups[g as usize];
        let master = 900_000 + cell * 1_000 + g;
        if let Ok(full) = <[u64; LANES]>::try_from(chunk) {
            run_group::<_, _, LANES>(
                protocol.clone(),
                topology.clone(),
                &init,
                master,
                full,
                &checkpoints,
                stat,
                hit,
            )
        } else {
            chunk
                .iter()
                .flat_map(|&s| {
                    run_group::<_, _, 1>(
                        protocol.clone(),
                        topology.clone(),
                        &init,
                        master,
                        [s],
                        &checkpoints,
                        stat,
                        hit,
                    )
                })
                .collect()
        }
    });
    let vec_records: Vec<SeedRecord> = vec_lanes.into_iter().flatten().collect();
    assert_eq!(vec_records.len() as u64, seeds, "{label}: lost a lane");

    suite.check_counts(
        format!("{label}: terminal probe-state histogram"),
        &probe_counts(&packed, categories),
        &probe_counts(&vec_records, categories),
    );
    let times = |rs: &[SeedRecord]| -> Vec<f64> { rs.iter().map(|r| r.hit_time).collect() };
    suite.check_distribution(
        format!("{label}: hit-time distribution"),
        &times(&packed),
        &times(&vec_records),
    );
    for (i, &cp) in checkpoints.iter().enumerate() {
        for (j, stat_name) in stat_names.iter().enumerate() {
            let col = |rs: &[SeedRecord]| -> Vec<f64> { rs.iter().map(|r| r.traj[i][j]).collect() };
            let (pa, ve) = (col(&packed), col(&vec_records));
            suite.check_moments(format!("{label}: {stat_name} @ step {cp}"), &pa, &ve);
            suite.check_distribution(format!("{label}: {stat_name} @ step {cp} [KS]"), &pa, &ve);
        }
    }
}

/// The four topology families of the acceptance criteria, at `n = 256`.
fn families(cell_seed: u64) -> Vec<(&'static str, FamilyTopo)> {
    let mut rng = StdRng::seed_from_u64(900 + cell_seed);
    vec![
        ("complete", FamilyTopo::Complete(Complete::new(N))),
        ("ring", FamilyTopo::Cycle(Cycle::new(N))),
        ("torus", FamilyTopo::Torus(Torus2d::new(16, 16))),
        (
            "random-regular",
            FamilyTopo::Csr(random_regular(N, 8, &mut rng).to_csr()),
        ),
    ]
}

/// Concrete family storage so each cell stays fully monomorphized.
#[derive(Clone)]
enum FamilyTopo {
    Complete(Complete),
    Cycle(Cycle),
    Torus(Torus2d),
    Csr(Csr),
}

/// Dispatches one cell over the family enum.
#[allow(clippy::too_many_arguments)]
fn compare_on_family<P>(
    suite: &mut EquivalenceSuite,
    label: &str,
    cell: u64,
    protocol: P,
    family: FamilyTopo,
    init: Vec<P::State>,
    categories: usize,
    stat_names: &[&str],
    stat: impl Fn(&[u32]) -> Vec<f64> + Sync + Clone,
    hit: impl Fn(&[u32]) -> bool + Sync + Clone,
) where
    P: PackedProtocol + Clone,
    P::State: Clone + Send + Sync,
{
    match family {
        FamilyTopo::Complete(t) => compare_cell(
            suite, label, cell, protocol, t, init, categories, stat_names, stat, hit,
        ),
        FamilyTopo::Cycle(t) => compare_cell(
            suite, label, cell, protocol, t, init, categories, stat_names, stat, hit,
        ),
        FamilyTopo::Torus(t) => compare_cell(
            suite, label, cell, protocol, t, init, categories, stat_names, stat, hit,
        ),
        FamilyTopo::Csr(t) => compare_cell(
            suite, label, cell, protocol, t, init, categories, stat_names, stat, hit,
        ),
    }
}

/// Balanced colour assignment for the consensus baselines.
fn balanced_colours(k: usize) -> Vec<Colour> {
    (0..N).map(|u| Colour::new(u % k)).collect()
}

/// Fraction of agents holding colour 0.
fn colour0_fraction(wide: &[u32]) -> f64 {
    wide.iter().filter(|&&p| p == 0).count() as f64 / wide.len() as f64
}

/// Fraction of dark agents (Diversification shade observable).
fn dark_fraction(wide: &[u32]) -> f64 {
    wide.iter().filter(|&&p| p & 1 == 1).count() as f64 / wide.len() as f64
}

/// Fraction held by the currently largest colour among `k`.
fn max_colour_fraction(wide: &[u32], k: usize) -> f64 {
    let mut counts = vec![0usize; k];
    for &p in wide {
        counts[p as usize] += 1;
    }
    counts.into_iter().max().unwrap_or(0) as f64 / wide.len() as f64
}

/// Number of colours of `k` still alive.
fn alive_colours(wide: &[u32], k: usize) -> f64 {
    let mut alive = vec![false; k];
    for &p in wide {
        alive[p as usize] = true;
    }
    alive.iter().filter(|&&a| a).count() as f64
}

/// Whether some colour of `k` has gone extinct.
fn some_colour_extinct(wide: &[u32], k: usize) -> bool {
    let mut alive = vec![false; k];
    for &p in wide {
        alive[p as usize] = true;
    }
    alive.iter().any(|&a| !a)
}

/// The `L = 1` contract: with the lane seed equal to the master seed,
/// the vec engine replays the turbo trajectory **bit-for-bit** — on a
/// one-observation protocol (Diversification, torus) and a
/// two-observation one (2-Choices, ring), checked at every `CHECK`-step
/// boundary, not just at the end.
#[test]
fn one_lane_vec_is_bit_exact_vs_turbo_shared_seed() {
    let w = Weights::new(vec![1.0, 1.0, 2.0, 4.0]).unwrap();
    let init_div = init::all_dark_balanced(N, &w);
    for seed in [3u64, 0xDEAD_BEEF] {
        let mut turbo = TurboSimulator::<_, _, u8>::new(
            Diversification::new(w.clone()),
            Torus2d::new(16, 16),
            &init_div,
            seed,
        );
        let mut vec = VecSimulator::<_, _, u8, 1>::from_seed(
            Diversification::new(w.clone()),
            Torus2d::new(16, 16),
            &init_div,
            seed,
        );
        for chunk in 0..32 {
            turbo.run(CHECK);
            vec.run(CHECK);
            assert_eq!(
                turbo.states_packed(),
                vec.lane_states_packed(0),
                "diversification diverged at chunk {chunk}, seed {seed}"
            );
        }
    }

    let init_cons = balanced_colours(4);
    for seed in [7u64, 99] {
        let mut turbo =
            TurboSimulator::<_, _, u8>::new(TwoChoices, Cycle::new(N), &init_cons, seed);
        let mut vec =
            VecSimulator::<_, _, u8, 1>::from_seed(TwoChoices, Cycle::new(N), &init_cons, seed);
        for chunk in 0..32 {
            turbo.run(CHECK);
            vec.run(CHECK);
            assert_eq!(
                turbo.states_packed(),
                vec.lane_states_packed(0),
                "2-choices diverged at chunk {chunk}, seed {seed}"
            );
        }
    }
}

/// The ensemble front-end's grouping invariance through the public API:
/// a seed count not divisible by the lane width produces byte-identical
/// per-seed results vs one-lane runs of the same engine.
#[test]
fn ensemble_remainders_match_one_lane_runs() {
    let w = Weights::new(vec![1.0, 1.0, 2.0, 4.0]).unwrap();
    let protocol = Diversification::new(w.clone());
    let topology = Torus2d::new(5, 8);
    let init = init::all_dark_balanced(40, &w);
    let master = 11;
    let steps = 4_000;
    let seeds: Vec<u64> = (0..11).map(|s| 60 + 7 * s).collect();
    let ensemble = replicate_vec::<_, _, u8, 8, _>(
        &protocol,
        &topology,
        &init,
        master,
        &seeds,
        steps,
        |seed, states| (seed, states.to_vec()),
    );
    assert_eq!(ensemble.len(), seeds.len());
    for (i, &seed) in seeds.iter().enumerate() {
        let mut solo =
            VecSimulator::<_, _, u8, 1>::new(protocol.clone(), topology, &init, master, [seed]);
        solo.run(steps);
        assert_eq!(
            ensemble[i],
            (seed, solo.lane_states_packed(0)),
            "seed {seed}"
        );
    }
}

#[test]
fn diversification_vec_lanes_match_packed_on_all_families() {
    let w = Weights::new(vec![1.0, 1.0, 2.0, 4.0]).unwrap();
    let k = w.len();
    let mut suite = EquivalenceSuite::new("vec-vs-packed: diversification", 1e-3);
    for (i, (name, family)) in families(0).into_iter().enumerate() {
        let w_stat = w.clone();
        let w_hit = w.clone();
        compare_on_family(
            &mut suite,
            &format!("diversification/{name}"),
            i as u64,
            Diversification::new(w.clone()),
            family,
            init::all_dark_balanced(N, &w),
            2 * k,
            &["diversity error", "dark fraction", "colour-0 fraction"],
            move |wide| {
                vec![
                    config_stats_from_words(wide, k).max_diversity_error(&w_stat),
                    dark_fraction(wide),
                    wide.iter().filter(|&&p| p >> 1 == 0).count() as f64 / wide.len() as f64,
                ]
            },
            move |wide| config_stats_from_words(wide, k).max_diversity_error(&w_hit) < 0.25,
        );
    }
    suite.assert_pass();
}

#[test]
fn voter_vec_lanes_match_packed_on_all_families() {
    let k = 4;
    let mut suite = EquivalenceSuite::new("vec-vs-packed: voter", 1e-3);
    for (i, (name, family)) in families(1).into_iter().enumerate() {
        compare_on_family(
            &mut suite,
            &format!("voter/{name}"),
            10 + i as u64,
            Voter,
            family,
            balanced_colours(k),
            k,
            &["colour-0 fraction", "max colour fraction", "alive colours"],
            move |wide| {
                vec![
                    colour0_fraction(wide),
                    max_colour_fraction(wide, k),
                    alive_colours(wide, k),
                ]
            },
            move |wide| some_colour_extinct(wide, k),
        );
    }
    suite.assert_pass();
}
