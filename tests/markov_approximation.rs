//! Integration test of the §2.4 machinery: a real agent's trajectory under
//! the full protocol is statistically indistinguishable (at the paper's
//! error scale) from the ideal equilibrium chain `P`.

use population_diversity::core::checker::TrajectoryRecorder;
use population_diversity::markov::{stationary_solve, total_variation, IdealChain, Walk};
use population_diversity::prelude::*;

#[test]
fn agent_occupancy_matches_ideal_stationary() {
    let n = 300;
    let weights = Weights::new(vec![1.0, 1.0, 2.0]).unwrap();
    let k = weights.len();
    let states = init::all_dark_balanced(n, &weights);
    let mut sim = Simulator::new(
        Diversification::new(weights.clone()),
        Complete::new(n),
        states,
        51,
    );
    sim.run(population_diversity::core::theory::convergence_budget(
        n,
        weights.total(),
        4.0,
    ));

    let mut recorder = TrajectoryRecorder::new(7, k);
    recorder.record(sim.population().states());
    for _ in 0..3_000_000u64 {
        sim.step();
        recorder.record(sim.population().states());
    }
    let walk = Walk::from_states(recorder.into_states());
    let chain = IdealChain::new(weights.as_slice(), n);
    let pi = chain.exact_stationary();
    let occupancy = walk.occupancy(2 * k);

    let tv = total_variation(&occupancy, &pi);
    assert!(tv < 0.06, "occupancy TV distance to pi: {tv}");

    // Colour-level fairness: dark + light occupancy per colour ≈ w_i/w.
    for i in 0..k {
        let measured = occupancy[chain.dark(i)] + occupancy[chain.light(i)];
        let target = weights.fair_share(i);
        assert!(
            (measured - target).abs() < 0.08,
            "colour {i}: measured {measured} vs fair share {target}"
        );
    }
}

#[test]
fn empirical_transitions_match_ideal_chain() {
    let n = 150;
    let weights = Weights::new(vec![1.0, 2.0]).unwrap();
    let k = weights.len();
    let states = init::all_dark_balanced(n, &weights);
    let mut sim = Simulator::new(
        Diversification::new(weights.clone()),
        Complete::new(n),
        states,
        52,
    );
    sim.run(population_diversity::core::theory::convergence_budget(
        n,
        weights.total(),
        4.0,
    ));

    let mut recorder = TrajectoryRecorder::new(0, k);
    recorder.record(sim.population().states());
    for _ in 0..4_000_000u64 {
        sim.step();
        recorder.record(sim.population().states());
    }
    let walk = Walk::from_states(recorder.into_states());
    let empirical = walk.empirical_transitions(2 * k);
    let ideal = IdealChain::new(weights.as_slice(), n);

    // Eq. (20): per-entry error err = O((log n / n)^{1/4} / n)… we allow the
    // constant to be generous and additionally scale with the entry size.
    let err_scale = population_diversity::core::theory::mc_approximation_error(n) / n as f64;
    for i in 0..2 * k {
        for j in 0..2 * k {
            let diff = (empirical.prob(i, j) - ideal.matrix().prob(i, j)).abs();
            if i == j {
                continue; // diagonal absorbs the complement; covered by off-diagonals
            }
            assert!(
                diff < 5.0 * err_scale + 3.0 * ideal.matrix().prob(i, j),
                "entry ({i},{j}): empirical {} vs ideal {} (scale {err_scale})",
                empirical.prob(i, j),
                ideal.matrix().prob(i, j)
            );
        }
    }
}

#[test]
fn perturbed_chains_sandwich_the_ideal() {
    // The majorisation device of §2.4: π⁻(D_ℓ) ≤ π(D_ℓ) ≤ π⁺(D_ℓ).
    let chain = IdealChain::new(&[1.0, 1.0, 2.0], 200);
    let err = population_diversity::core::theory::mc_approximation_error(200) / 2000.0;
    for target in 0..3 {
        let pi = chain.exact_stationary();
        let plus = stationary_solve(&chain.perturbed_toward_dark(target, err));
        let minus = stationary_solve(&chain.perturbed_toward_dark(target, -err));
        let d = chain.dark(target);
        assert!(minus[d] <= pi[d] + 1e-12, "target {target}");
        assert!(plus[d] >= pi[d] - 1e-12, "target {target}");
    }
}
